/**
 * @file
 * Shared dense-row microkernel vocabulary for every SpMM/SpMV/GCN
 * inner loop.
 *
 * The paper maps one warp lane per dense column (Section IV-C,
 * Figure 7): the d-wide accumulation `acc[d] += a * brow[d]` is the
 * unit of work every kernel repeats per non-zero. On a CPU the same
 * mapping is a vector register per 8 (AVX2) or 4 (NEON) columns. This
 * header centralizes that datapath so mergepath, the split baselines,
 * the aggregators and the GCN training path all share one
 * implementation instead of ~25 hand-rolled copies.
 *
 * Two code paths exist behind one dispatch table:
 *   - scalar: portable reference, kept deliberately un-autovectorized
 *     so cross-checking it against the SIMD path compares genuinely
 *     different code.
 *   - simd: AVX2(+FMA) or NEON, with fully unrolled fixed-dimension
 *     variants for d in {16, 32, 64} — the feature widths GNN layers
 *     actually use.
 *
 * Kernels call select_row_kernels(dim) once per prepare()/run() and
 * hold the returned table; the env var MPS_MICROKERNEL=scalar|simd
 * overrides the default path (tests use it to cross-check), and the
 * cmake option MPS_FORCE_SCALAR compiles the SIMD path out entirely.
 */
#ifndef MPS_CORE_MICROKERNEL_H
#define MPS_CORE_MICROKERNEL_H

#include <atomic>

#include "mps/sparse/types.h"

#if !defined(MPS_FORCE_SCALAR) && defined(__AVX2__)
#define MPS_MICROKERNEL_SIMD 1 /* AVX2 (8-wide), FMA when available */
#elif !defined(MPS_FORCE_SCALAR) && defined(__ARM_NEON)
#define MPS_MICROKERNEL_SIMD 2 /* NEON (4-wide) */
#else
#define MPS_MICROKERNEL_SIMD 0 /* scalar only */
#endif

namespace mps {

/** Which implementation family a dispatch table uses. */
enum class MicrokernelPath { kScalar, kSimd };

/** True when a vectorized path was compiled into this binary. */
constexpr bool
microkernel_simd_compiled()
{
    return MPS_MICROKERNEL_SIMD != 0;
}

/** Vector lanes of the compiled SIMD path (1 when scalar-only). */
constexpr index_t
microkernel_vector_width()
{
#if MPS_MICROKERNEL_SIMD == 1
    return 8;
#elif MPS_MICROKERNEL_SIMD == 2
    return 4;
#else
    return 1;
#endif
}

/** "scalar" or "simd". */
const char *microkernel_path_name(MicrokernelPath path);

/**
 * Process-wide default path: the SIMD path when compiled in, unless
 * MPS_MICROKERNEL=scalar|simd overrides it. Resolved once on first
 * call; also publishes the microkernel.* gauges.
 */
MicrokernelPath microkernel_default_path();

// ---------------------------------------------------------------------
// Atomic scalar primitives — the single shared definition (previously
// copied into four kernels). fetch_add is used when the float
// atomic_ref is lock-free; the CAS loop remains as the fallback.
// ---------------------------------------------------------------------

/** Atomic slot += v (relaxed; float adds commute). */
inline void
atomic_add(value_t &slot, value_t v)
{
    std::atomic_ref<value_t> ref(slot);
    if constexpr (std::atomic_ref<value_t>::is_always_lock_free) {
        ref.fetch_add(v, std::memory_order_relaxed);
    } else {
        value_t old = ref.load(std::memory_order_relaxed);
        while (!ref.compare_exchange_weak(old, old + v,
                                          std::memory_order_relaxed)) {
        }
    }
}

/** Atomic slot = max(slot, v) (relaxed). */
inline void
atomic_max(value_t &slot, value_t v)
{
    std::atomic_ref<value_t> ref(slot);
    value_t old = ref.load(std::memory_order_relaxed);
    while (old < v && !ref.compare_exchange_weak(
                          old, v, std::memory_order_relaxed)) {
    }
}

// ---------------------------------------------------------------------
// Dispatch table
// ---------------------------------------------------------------------

/**
 * One resolved set of row primitives. All pointers are non-null; dim
 * is passed on every call and must match the dim the table was
 * selected for only in the fixed-dimension tables (asserted there).
 * Rows may alias only where the operation reads and writes the same
 * pointer (e.g. scale); distinct arguments must not overlap.
 */
struct RowKernels
{
    /** row[0:dim) = 0. */
    void (*zero)(value_t *row, index_t dim);
    /** row[0:dim) = v. */
    void (*fill)(value_t *row, value_t v, index_t dim);
    /** dst[0:dim) = src[0:dim). */
    void (*copy)(value_t *dst, const value_t *src, index_t dim);
    /** acc += x. */
    void (*add)(value_t *acc, const value_t *x, index_t dim);
    /** acc += a * x — the SpMM hot loop. */
    void (*axpy)(value_t *acc, value_t a, const value_t *x, index_t dim);
    /** row *= a. */
    void (*scale)(value_t *row, value_t a, index_t dim);
    /** y = a * y + x. */
    void (*scale_add)(value_t *y, value_t a, const value_t *x,
                      index_t dim);
    /** acc = max(acc, x) element-wise. */
    void (*vmax)(value_t *acc, const value_t *x, index_t dim);
    /** Sum of x[i] * y[i]. */
    value_t (*dot)(const value_t *x, const value_t *y, index_t dim);
    /** Sum of vals[k] * x[cols[k]] for k in [begin, end) — SpMV row. */
    value_t (*gather_dot)(const value_t *vals, const index_t *cols,
                          index_t begin, index_t end, const value_t *x);
    /** dst += acc with plain stores (thread owns the row). */
    void (*commit_plain)(value_t *dst, const value_t *acc, index_t dim);
    /** dst += acc with one atomic_add per element (shared row). */
    void (*commit_atomic)(value_t *dst, const value_t *acc, index_t dim);
    /** dst = max(dst, acc) with one atomic_max per element. */
    void (*commit_max_atomic)(value_t *dst, const value_t *acc,
                              index_t dim);
    /** dst += a * x with one atomic_add per element (column split). */
    void (*axpy_atomic)(value_t *dst, value_t a, const value_t *x,
                        index_t dim);

    // -----------------------------------------------------------------
    // Mixed precision (mps/sparse/quant.h): B-operand rows stored at
    // bf16 or int8 width, widened to fp32 in registers. Accumulators
    // and destinations are always fp32, so the commit_* protocol above
    // is reused unchanged — only the load side narrows. The encode_*
    // kernels are the quantizing stores that build the shadow rows;
    // they are bit-identical to the scalar quant.h primitives.
    // -----------------------------------------------------------------

    /** acc += a * widen(x) — bf16 operand, fp32 accumulate. */
    void (*axpy_bf16)(value_t *acc, value_t a, const bf16_t *x,
                      index_t dim);
    /** Sum of x[i] * widen(y[i]) — fp32 times bf16 row. */
    value_t (*dot_bf16)(const value_t *x, const bf16_t *y, index_t dim);
    /** gather_dot over a bf16 x vector. */
    value_t (*gather_dot_bf16)(const value_t *vals, const index_t *cols,
                               index_t begin, index_t end,
                               const bf16_t *x);
    /** dst[0:dim) = bf16(src[0:dim)) (round-to-nearest-even). */
    void (*encode_bf16)(bf16_t *dst, const value_t *src, index_t dim);
    /** dst[0:dim) = widen(src[0:dim)). */
    void (*decode_bf16)(value_t *dst, const bf16_t *src, index_t dim);
    /** acc += a * (scale * x + zero) — int8 operand, fp32 accumulate. */
    void (*axpy_int8)(value_t *acc, value_t a, const int8_t *x,
                      value_t scale, value_t zero, index_t dim);
    /** Sum of x[i] * (scale * y[i] + zero). */
    value_t (*dot_int8)(const value_t *x, const int8_t *y, value_t scale,
                        value_t zero, index_t dim);
    /** gather_dot over an int8 x vector under (scale, zero). */
    value_t (*gather_dot_int8)(const value_t *vals, const index_t *cols,
                               index_t begin, index_t end,
                               const int8_t *x, value_t scale,
                               value_t zero);
    /** dst[0:dim) = int8 code of src under (scale, zero), saturating. */
    void (*encode_int8)(int8_t *dst, const value_t *src, value_t scale,
                        value_t zero, index_t dim);
    /** dst[0:dim) = scale * src + zero. */
    void (*decode_int8)(value_t *dst, const int8_t *src, value_t scale,
                        value_t zero, index_t dim);

    MicrokernelPath path;
    /** Compile-time dimension of this table, 0 for the generic ones. */
    index_t fixed_dim;
    /** Short label: "scalar", "simd", "simd16", "simd32", "simd64". */
    const char *name;
};

/**
 * Resolve the table for @p dim on the process default path. Returns a
 * fixed-dimension table for d in {16, 32, 64} on the SIMD path, the
 * generic table otherwise. Cheap (a couple of branches), but callers
 * with a prepare() step should still resolve once and keep the
 * reference.
 */
const RowKernels &select_row_kernels(index_t dim);

/** Same, forcing @p path (tests and the scalar-vs-simd bench). */
const RowKernels &select_row_kernels(index_t dim, MicrokernelPath path);

// ---------------------------------------------------------------------
// Convenience free functions for single-shot call sites (activation,
// SGD updates, ...). Each forwards through select_row_kernels(dim).
// ---------------------------------------------------------------------

void row_zero(value_t *row, index_t dim);
void row_fill(value_t *row, value_t v, index_t dim);
void row_copy(value_t *dst, const value_t *src, index_t dim);
void row_add(value_t *acc, const value_t *x, index_t dim);
void row_axpy(value_t *acc, value_t a, const value_t *x, index_t dim);
void row_scale(value_t *row, value_t a, index_t dim);
void row_scale_add(value_t *y, value_t a, const value_t *x, index_t dim);
void row_max(value_t *acc, const value_t *x, index_t dim);
value_t row_dot(const value_t *x, const value_t *y, index_t dim);
value_t row_gather_dot(const value_t *vals, const index_t *cols,
                       index_t begin, index_t end, const value_t *x);
void row_commit_plain(value_t *dst, const value_t *acc, index_t dim);
void row_commit_atomic(value_t *dst, const value_t *acc, index_t dim);

/**
 * Per-thread 64-byte-aligned accumulator scratch of at least @p dim
 * elements (uninitialized; callers zero/fill it). Grows on demand and
 * is reused across parallel_for tasks, so the pool kernels no longer
 * allocate a std::vector per task. One buffer per thread: a caller
 * must finish with it before invoking anything else that uses it.
 */
value_t *microkernel_scratch(index_t dim);

} // namespace mps

#endif // MPS_CORE_MICROKERNEL_H
