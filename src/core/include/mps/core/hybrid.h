/**
 * @file
 * Hybrid per-row-class SpMM dispatch: dense-band row-GEMM + merge-path
 * tail in one two-phase schedule.
 *
 * The merge-path decomposition solves load balance, but it makes every
 * row pay the schedule's costs: a scratch accumulate + commit round
 * trip per row, and one atomic vector commit per contributing thread on
 * every row long enough to span share boundaries. HC-SpMM (PAPERS.md)
 * shows that real degree mixes are better served by routing row CLASSES
 * to different execution strategies; GE-SpMM makes the same argument
 * for dense row bands. The CPU transplant here classifies rows ONCE at
 * schedule-build time:
 *
 *  - dense class: rows the merge path serves poorly — long rows (deg >=
 *    the merge-path cost, i.e. rows the schedule would split across
 *    threads and commit atomically) and column-clustered rows (deg >=
 *    min_degree with a column span within span_ratio * deg; after an
 *    RCM/BFS reorder, and on banded Type II graphs natively, these
 *    gather near-contiguously). Maximal runs of dense-class rows whose
 *    total nnz reaches min_band_nnz become dense BANDS, executed by a
 *    row_split-style per-row microkernel GEMM: direct accumulation into
 *    the output row (RowKernels axpy + gather prefetch), no scratch
 *    round trip, no atomics — each band row is owned by exactly one
 *    executor.
 *  - tail class: everything else (the power-law tail, empty rows, short
 *    scattered rows), compacted into a tail CSR and executed by the
 *    existing merge-path schedule with selective atomic split-row
 *    commit.
 *
 * Both phases are submitted to ONE WorkStealPool parallel_for as
 * sibling range jobs (tail shares first, dense chunks after), so a
 * straggler in either phase is stolen by executors that drained the
 * other. The row sets are disjoint, so the phases never write the same
 * output row and need no cross-phase synchronization.
 *
 * Bit-identity: with a 1-thread tail schedule the hybrid output equals
 * plain merge-path bit for bit — the dense path's direct accumulation
 * computes 0 + sum(axpy) exactly like commit_plain(0-filled dst, acc)
 * does, in the same order with the same microkernels.
 *
 * `MPS_HYBRID=0` turns classification off: every row lands in the tail
 * and the hybrid schedule degenerates to plain merge-path over the base
 * matrix (the check.sh build-nohybrid stage proves this opt-out is
 * behavior-neutral). The remaining knobs are MPS_HYBRID_MIN_DEGREE,
 * MPS_HYBRID_SPAN_RATIO, MPS_HYBRID_MIN_SPAN, MPS_HYBRID_LONG_DEGREE
 * and MPS_HYBRID_MIN_BAND_NNZ (see HybridParams).
 */
#ifndef MPS_CORE_HYBRID_H
#define MPS_CORE_HYBRID_H

#include <memory>
#include <vector>

#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/sparse/csr_matrix.h"
#include "mps/sparse/dense_matrix.h"

namespace mps {

class WorkStealPool;

/**
 * The cached MPS_HYBRID parse: false for "0"/"off"/"false"/"no", true
 * otherwise (hybrid dispatch is on by default). When false,
 * classify_rows() returns an all-tail partition and HybridSchedule
 * degenerates to plain merge-path.
 */
bool hybrid_enabled();

/**
 * Minimum dense_fraction() at which executors prefer a hybrid schedule
 * over plain merge-path: below this the dense phase is too small to
 * amortize its dispatch units. AdaptiveSpmm and the serve batch
 * executor share this threshold (it lives here, not in kernels/, so
 * serve can consult it without linking the kernel registry).
 */
inline constexpr double kHybridDenseFractionMin = 0.25;

/** Row-classification thresholds (see the file comment). */
struct HybridParams
{
    /** Minimum degree for the clustered-row rule (MPS_HYBRID_MIN_DEGREE). */
    index_t min_degree = 4;
    /**
     * Column-span budget per clustered row: span <= max(span_ratio *
     * deg, min_span) (MPS_HYBRID_SPAN_RATIO / MPS_HYBRID_MIN_SPAN).
     */
    double span_ratio = 16.0;
    index_t min_span = 128;
    /**
     * Degree at which a row is dense-class regardless of span — the
     * merge path would split it across shares and commit atomically.
     * 0 = auto: the schedule's merge-path cost (MPS_HYBRID_LONG_DEGREE).
     */
    index_t long_degree = 0;
    /**
     * Minimum nnz for a run of dense-class rows to become a band;
     * smaller runs fall back to the tail (MPS_HYBRID_MIN_BAND_NNZ).
     */
    int64_t min_band_nnz = 64;
};

/** Env-resolved classification thresholds (cheap, parsed per call). */
HybridParams resolve_hybrid_params();

/** A maximal run of dense-class rows [begin, end). */
struct RowBand
{
    index_t begin = 0;
    index_t end = 0;
};

/** Result of the one-shot row classification. */
struct RowClassPartition
{
    /** Sorted, disjoint dense bands. Empty = everything is tail. */
    std::vector<RowBand> bands;
    index_t dense_rows = 0;
    int64_t dense_nnz = 0;

    bool has_bands() const { return !bands.empty(); }
    /** True when the bands cover every row of an @p rows-row matrix. */
    bool all_dense(index_t rows) const {
        return dense_rows == rows && rows > 0;
    }
};

/**
 * Classify the rows of @p a (the matrix the traversal will execute —
 * callers with a reorder plan pass the permuted matrix, which is what
 * makes the classification reorder-aware). @p cost is the merge-path
 * cost the tail schedule will use; it anchors the auto long-row
 * threshold. O(rows) plus one column scan per clustered-rule candidate.
 */
RowClassPartition classify_rows(const CsrMatrix &a, const HybridParams &p,
                                index_t cost);

/**
 * The two-phase schedule: a row-class partition, per-band dense chunks
 * sized in merge items (so dense chunks and tail shares are comparable
 * work units for the steal path), and the tail's merge-path schedule
 * over a compacted tail CSR. Immutable after build; shared read-only
 * through the ScheduleCache like MergePathSchedule.
 */
class HybridSchedule
{
  public:
    /**
     * Build for @p a at merge-path cost @p cost (>= 1) with the
     * small-graph thread floor @p min_threads applied to the tail
     * schedule (0 disables).
     */
    static HybridSchedule build(const CsrMatrix &a, index_t cost,
                                index_t min_threads = 0);
    static HybridSchedule build(const CsrMatrix &a, index_t cost,
                                index_t min_threads,
                                const HybridParams &params);

    const RowClassPartition &partition() const { return partition_; }
    const HybridParams &params() const { return params_; }
    /** Band row sub-ranges of roughly cost-comparable merge items. */
    const std::vector<RowBand> &dense_chunks() const {
        return dense_chunks_;
    }

    /** True when at least one row is tail class. */
    bool has_tail() const { return tail_nnz_items_ > 0; }
    /**
     * True when NO row is dense class: the tail schedule was built on
     * the base matrix directly and tail() must not be used.
     */
    bool tail_is_base() const { return tail_is_base_; }
    /** Compacted tail matrix (only when has_tail() && !tail_is_base()). */
    const CsrMatrix &tail() const { return tail_; }
    /** tail() row -> base row (the tail commit scatter). */
    const std::vector<index_t> &tail_rows() const { return tail_rows_; }
    /** Merge-path schedule of the tail (empty when !has_tail()). */
    const MergePathSchedule &tail_schedule() const { return tail_sched_; }

    /** Shape of the matrix this schedule was built for. */
    index_t rows() const { return rows_; }
    index_t cols() const { return cols_; }
    index_t nnz() const { return nnz_; }

    index_t cost() const { return cost_; }
    index_t min_threads() const { return min_threads_; }

    /** Fraction of nnz routed to the dense row-GEMM phase. */
    double dense_fraction() const {
        return nnz_ == 0 ? 0.0
                         : static_cast<double>(partition_.dense_nnz) /
                               static_cast<double>(nnz_);
    }

  private:
    RowClassPartition partition_;
    HybridParams params_;
    std::vector<RowBand> dense_chunks_;
    CsrMatrix tail_;               ///< compacted tail (may be empty)
    std::vector<index_t> tail_rows_;
    MergePathSchedule tail_sched_;
    bool tail_is_base_ = true;
    int64_t tail_nnz_items_ = 0;   ///< tail rows + tail nnz
    index_t rows_ = 0;
    index_t cols_ = 0;
    index_t nnz_ = 0;
    index_t cost_ = 0;
    index_t min_threads_ = 0;

    friend HybridSchedule repair_hybrid_schedule(const HybridSchedule &,
                                                 const CsrMatrix &,
                                                 const CsrMatrix &,
                                                 index_t);
};

/**
 * Migrate a hybrid schedule across a DeltaCsr compaction: @p new_a
 * agrees with @p old_a on every row before @p first_dirty_row (the
 * repair_schedule() contract). The row-class partition is recomputed
 * with the schedule's own params — unchanged prefix rows classify
 * identically, so the partition prefix migrates verbatim — and the tail
 * schedule is repaired through repair_schedule() from the first dirty
 * TAIL row instead of rebuilt, whenever the tail row set's prefix is
 * unchanged. Falls back to a fresh build when the structure shifted
 * (e.g. the graph gained its first dense band). Emits hybrid.repairs /
 * hybrid.repair_rebuilds.
 */
HybridSchedule repair_hybrid_schedule(const HybridSchedule &old_hs,
                                      const CsrMatrix &old_a,
                                      const CsrMatrix &new_a,
                                      index_t first_dirty_row);

/**
 * One column panel of the two-phase execution (the fused pipeline's
 * entry point): C[:, c_col0:c_col0+width) += A * B[:, b_col0:+width),
 * tail shares + dense chunks submitted as sibling jobs of one
 * parallel_for. The caller zero-fills C's target columns (commits and
 * the dense accumulation both add). @p epi fires per finalized row with
 * the BASE-matrix row id (dense rows and plain tail commits inline;
 * atomically committed tail rows need the caller's shared-row pass,
 * exactly like mergepath_spmm_panel). @p count_census folds the tail
 * sweep into the spmm.mergepath.* write census on request.
 */
void hybrid_spmm_panel(const CsrMatrix &a, const HybridSchedule &hs,
                       const DenseMatrix &b, index_t b_col0,
                       DenseMatrix &c, index_t c_col0, index_t width,
                       WorkStealPool &pool, const SpmmLocality &loc,
                       PanelEpilogue epi = nullptr,
                       const void *epi_ctx = nullptr,
                       bool count_census = false);

/** Sequential panel sweep (deterministic reference for tests). */
void hybrid_spmm_panel(const CsrMatrix &a, const HybridSchedule &hs,
                       const DenseMatrix &b, index_t b_col0,
                       DenseMatrix &c, index_t c_col0, index_t width,
                       const SpmmLocality &loc,
                       PanelEpilogue epi = nullptr,
                       const void *epi_ctx = nullptr,
                       bool count_census = false);

/**
 * Full C = A * B through the two-phase schedule, with the locality
 * panel loop (column tiling, prefetch, reorder scatter) applied to both
 * phases. Records the kernel.hybrid.dense_ms / kernel.hybrid.tail_ms
 * phase histograms when metrics are enabled.
 */
void hybrid_spmm_parallel(const CsrMatrix &a, const HybridSchedule &hs,
                          const DenseMatrix &b, DenseMatrix &c,
                          WorkStealPool &pool, const SpmmLocality &loc);
void hybrid_spmm_parallel(const CsrMatrix &a, const HybridSchedule &hs,
                          const DenseMatrix &b, DenseMatrix &c,
                          WorkStealPool &pool);

/** Sequential full execution (bit-identity tests). */
void hybrid_spmm_sequential(const CsrMatrix &a, const HybridSchedule &hs,
                            const DenseMatrix &b, DenseMatrix &c,
                            const SpmmLocality &loc = SpmmLocality{});

} // namespace mps

#endif // MPS_CORE_HYBRID_H
