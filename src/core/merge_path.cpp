#include "mps/core/merge_path.h"

#include <algorithm>

#include "mps/util/log.h"

namespace mps {

MergeCoordinate
merge_path_search(int64_t diagonal, const index_t *row_end_offsets,
                  index_t num_rows, index_t nnz)
{
    MPS_CHECK(diagonal >= 0 &&
                  diagonal <= static_cast<int64_t>(num_rows) + nnz,
              "diagonal out of range: ", diagonal);

    // Binary search along the diagonal for the first row index whose
    // row-end offset exceeds the non-zero index paired with it. Items of
    // list A (row ends) win ties, matching the CUB reference: a row's
    // trailing boundary is consumed before the first non-zero of the
    // next row at the same diagonal.
    int64_t x_min = std::max<int64_t>(diagonal - nnz, 0);
    int64_t x_max = std::min<int64_t>(diagonal, num_rows);
    while (x_min < x_max) {
        int64_t pivot = x_min + (x_max - x_min) / 2;
        if (row_end_offsets[pivot] <= diagonal - pivot - 1)
            x_min = pivot + 1;
        else
            x_max = pivot;
    }
    return {static_cast<index_t>(x_min),
            static_cast<index_t>(diagonal - x_min)};
}

MergeCoordinate
merge_path_search_window(int64_t diagonal, const index_t *row_end_offsets,
                         index_t num_rows, index_t nnz, index_t row_lo,
                         index_t row_hi)
{
    MPS_CHECK(diagonal >= 0 &&
                  diagonal <= static_cast<int64_t>(num_rows) + nnz,
              "diagonal out of range: ", diagonal);
    MPS_CHECK(row_lo >= 0 && row_hi <= num_rows && row_lo <= row_hi,
              "bad search window [", row_lo, ", ", row_hi, "]");

    int64_t x_min = std::max<int64_t>(diagonal - nnz, row_lo);
    int64_t x_max = std::min<int64_t>(diagonal, row_hi);
    MPS_CHECK(x_min <= x_max, "path does not cross diagonal ", diagonal,
              " within rows [", row_lo, ", ", row_hi, "]");
    while (x_min < x_max) {
        int64_t pivot = x_min + (x_max - x_min) / 2;
        if (row_end_offsets[pivot] <= diagonal - pivot - 1)
            x_min = pivot + 1;
        else
            x_max = pivot;
    }
    return {static_cast<index_t>(x_min),
            static_cast<index_t>(diagonal - x_min)};
}

} // namespace mps
