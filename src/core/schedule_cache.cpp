#include "mps/core/schedule_cache.h"

#include <algorithm>

#include "mps/util/log.h"
#include "mps/util/metrics.h"

namespace mps {

namespace {

/** splitmix64 finalizer — good avalanche for cheap hash mixing. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Threads that build_with_cost() would use for (a, cost, min_threads). */
index_t
threads_for_cost(const CsrMatrix &a, index_t cost, index_t min_threads)
{
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    int64_t threads = (total + cost - 1) / cost;
    if (threads < 1)
        threads = 1;
    if (min_threads > 0 && threads < min_threads)
        threads = min_threads;
    return static_cast<index_t>(threads);
}

} // namespace

uint64_t
csr_fingerprint(const CsrMatrix &a)
{
    uint64_t h = mix64(static_cast<uint64_t>(a.rows()));
    h ^= mix64(static_cast<uint64_t>(a.cols()) + 0x51ed2701);
    h ^= mix64(static_cast<uint64_t>(a.nnz()) + 0xa5a5a5a5);
    // Sample up to 64 evenly spaced entries of each structural array so
    // the fingerprint stays O(1) on huge graphs yet separates matrices
    // that agree on shape but not structure.
    const auto sample = [&h](const std::vector<index_t> &xs) {
        const size_t n = xs.size();
        if (n == 0)
            return;
        const size_t step = std::max<size_t>(1, n / 64);
        for (size_t i = 0; i < n; i += step)
            h = mix64(h ^ (static_cast<uint64_t>(xs[i]) + i));
    };
    sample(a.row_ptr());
    sample(a.col_idx());
    return h;
}

ScheduleCache &
ScheduleCache::global()
{
    static ScheduleCache *cache = new ScheduleCache();
    return *cache;
}

std::shared_ptr<const MergePathSchedule>
ScheduleCache::lookup(const CsrMatrix &a, const Key &key,
                      index_t num_threads)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        if (metrics.enabled())
            metrics.counter_add("schedule.cache.hits");
        return it->second;
    }
    // Build under the lock: construction is cheap relative to the SpMM
    // it schedules, and serializing first-miss builds guarantees the
    // "one build per key" invariant the metrics assert.
    auto sched = std::make_shared<const MergePathSchedule>(
        MergePathSchedule::build(a, num_threads));
    entries_.emplace(key, sched);
    ++misses_;
    if (metrics.enabled()) {
        metrics.counter_add("schedule.cache.misses");
        metrics.gauge_set("schedule.cache.size",
                          static_cast<double>(entries_.size()));
    }
    return sched;
}

std::shared_ptr<const MergePathSchedule>
ScheduleCache::get_or_build(const CsrMatrix &a, index_t num_threads)
{
    MPS_CHECK(num_threads >= 1, "need at least one thread");
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    index_t cost = static_cast<index_t>(
        (total + num_threads - 1) / std::max<index_t>(num_threads, 1));
    if (cost < 1)
        cost = 1;
    return lookup(a, Key{csr_fingerprint(a), num_threads, cost},
                  num_threads);
}

std::shared_ptr<const MergePathSchedule>
ScheduleCache::get_or_build_with_cost(const CsrMatrix &a, index_t cost,
                                      index_t min_threads)
{
    MPS_CHECK(cost >= 1, "merge-path cost must be >= 1");
    index_t threads = threads_for_cost(a, cost, min_threads);
    return lookup(a, Key{csr_fingerprint(a), threads, cost}, threads);
}

std::shared_ptr<const ReorderPlan>
ScheduleCache::get_or_build_reorder(const CsrMatrix &a, ReorderKind kind)
{
    MPS_CHECK(kind != ReorderKind::kNone,
              "identity needs no reorder plan");
    MetricsRegistry &metrics = MetricsRegistry::global();
    const ReorderKey key{csr_fingerprint(a), static_cast<int>(kind)};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = reorders_.find(key);
    if (it != reorders_.end()) {
        if (metrics.enabled())
            metrics.counter_add("locality.permutation.hits");
        return it->second;
    }
    // Built under the lock, like the schedules: the permutation is an
    // O(rows + nnz) one-off per graph, and serializing first-miss
    // builds keeps the "one plan per (graph, kind)" invariant simple.
    auto plan = std::make_shared<const ReorderPlan>(
        build_reorder_plan(a, kind));
    reorders_.emplace(key, plan);
    if (metrics.enabled()) {
        metrics.counter_add("locality.permutation.misses");
        metrics.gauge_set("locality.permutation.plans",
                          static_cast<double>(reorders_.size()));
    }
    return plan;
}

size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
ScheduleCache::reorder_size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reorders_.size();
}

int64_t
ScheduleCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

int64_t
ScheduleCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    reorders_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace mps
