#include "mps/core/schedule_cache.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "mps/core/hybrid.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"

namespace mps {

namespace {

/** splitmix64 finalizer — good avalanche for cheap hash mixing. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Threads that build_with_cost() would use for (a, cost, min_threads). */
index_t
threads_for_cost(const CsrMatrix &a, index_t cost, index_t min_threads)
{
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    int64_t threads = (total + cost - 1) / cost;
    if (threads < 1)
        threads = 1;
    if (min_threads > 0 && threads < min_threads)
        threads = min_threads;
    return static_cast<index_t>(threads);
}

/** Cost that get_or_build() derives for an explicit thread count. */
index_t
cost_for_threads(const CsrMatrix &a, index_t num_threads)
{
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    index_t cost = static_cast<index_t>(
        (total + num_threads - 1) / std::max<index_t>(num_threads, 1));
    return cost < 1 ? 1 : cost;
}

} // namespace

uint64_t
csr_fingerprint(const CsrMatrix &a)
{
    uint64_t h = mix64(static_cast<uint64_t>(a.rows()));
    h ^= mix64(static_cast<uint64_t>(a.cols()) + 0x51ed2701);
    h ^= mix64(static_cast<uint64_t>(a.nnz()) + 0xa5a5a5a5);
    // Sample up to 64 evenly spaced entries of each structural array so
    // the fingerprint stays O(1) on huge graphs yet separates matrices
    // that agree on shape but not structure.
    const auto sample = [&h](const std::vector<index_t> &xs) {
        const size_t n = xs.size();
        if (n == 0)
            return;
        const size_t step = std::max<size_t>(1, n / 64);
        for (size_t i = 0; i < n; i += step)
            h = mix64(h ^ (static_cast<uint64_t>(xs[i]) + i));
    };
    sample(a.row_ptr());
    sample(a.col_idx());
    return h;
}

size_t
default_schedule_cache_max()
{
    const char *env = std::getenv("MPS_SCHEDULE_CACHE_MAX");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        long cap = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && cap >= 1)
            return static_cast<size_t>(cap);
        warn(detail::format_parts(
            "ignoring invalid MPS_SCHEDULE_CACHE_MAX=", env));
    }
    return 256;
}

ScheduleCache &
ScheduleCache::global()
{
    static ScheduleCache *cache = new ScheduleCache();
    return *cache;
}

ScheduleCache::Entry *
ScheduleCache::find_locked(const Key &key)
{
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

void
ScheduleCache::evict_to_cap_locked()
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    // Merge-path and hybrid entries share one LRU budget: the cap
    // bounds the TOTAL number of schedules held, and the globally
    // least-recently-used entry goes first regardless of kind.
    while (entries_.size() + hybrids_.size() > max_entries_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (victim == entries_.end() ||
                it->second.last_used < victim->second.last_used)
                victim = it;
        }
        auto hybrid_victim = hybrids_.begin();
        for (auto it = hybrids_.begin(); it != hybrids_.end(); ++it) {
            if (hybrid_victim == hybrids_.end() ||
                it->second.last_used < hybrid_victim->second.last_used)
                hybrid_victim = it;
        }
        if (hybrid_victim != hybrids_.end() &&
            (victim == entries_.end() ||
             hybrid_victim->second.last_used < victim->second.last_used))
            hybrids_.erase(hybrid_victim);
        else
            entries_.erase(victim);
        ++evictions_;
        if (metrics.enabled())
            metrics.counter_add("schedule_cache.evictions");
    }
}

std::shared_ptr<const MergePathSchedule>
ScheduleCache::lookup(const CsrMatrix &a, const Key &key,
                      index_t num_threads, bool by_cost, index_t cost,
                      index_t min_threads)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry *e = find_locked(key)) {
        e->last_used = ++lru_tick_;
        ++hits_;
        if (metrics.enabled())
            metrics.counter_add("schedule.cache.hits");
        return e->schedule;
    }
    // Build under the lock: construction is cheap relative to the SpMM
    // it schedules, and serializing first-miss builds guarantees the
    // "one build per key" invariant the metrics assert.
    Entry e;
    e.schedule = std::make_shared<const MergePathSchedule>(
        MergePathSchedule::build(a, num_threads));
    e.by_cost = by_cost;
    e.cost = cost;
    e.min_threads = min_threads;
    e.last_used = ++lru_tick_;
    auto sched = e.schedule;
    entries_.emplace(key, std::move(e));
    evict_to_cap_locked();
    ++misses_;
    if (metrics.enabled()) {
        metrics.counter_add("schedule.cache.misses");
        metrics.gauge_set("schedule.cache.size",
                          static_cast<double>(entries_.size()));
    }
    return sched;
}

std::shared_ptr<const MergePathSchedule>
ScheduleCache::get_or_build(const CsrMatrix &a, index_t num_threads)
{
    MPS_CHECK(num_threads >= 1, "need at least one thread");
    index_t cost = cost_for_threads(a, num_threads);
    return lookup(a, Key{csr_fingerprint(a), num_threads, cost},
                  num_threads, /*by_cost=*/false, cost,
                  /*min_threads=*/0);
}

std::shared_ptr<const MergePathSchedule>
ScheduleCache::get_or_build_with_cost(const CsrMatrix &a, index_t cost,
                                      index_t min_threads)
{
    MPS_CHECK(cost >= 1, "merge-path cost must be >= 1");
    index_t threads = threads_for_cost(a, cost, min_threads);
    return lookup(a, Key{csr_fingerprint(a), threads, cost}, threads,
                  /*by_cost=*/true, cost, min_threads);
}

void
ScheduleCache::fill_census_locked(Entry &e, const CsrMatrix &a)
{
    if (!e.census_chunks.empty())
        return;
    const index_t threads = e.schedule->num_threads();
    const index_t chunks = (threads + kCensusChunk - 1) / kCensusChunk;
    e.census_chunks.reserve(static_cast<size_t>(chunks));
    for (index_t i = 0; i < chunks; ++i) {
        e.census_chunks.push_back(e.schedule->census_part(
            a, i * kCensusChunk,
            std::min<index_t>((i + 1) * kCensusChunk, threads)));
    }
}

ScheduleCensus
ScheduleCache::fold_census(const Entry &e)
{
    MPS_CHECK(!e.census_chunks.empty(), "census not filled");
    ScheduleCensusPart acc = e.census_chunks.front();
    for (size_t i = 1; i < e.census_chunks.size(); ++i)
        acc = acc.merged(e.census_chunks[i]);
    return acc.counts;
}

ScheduleCensus
ScheduleCache::census_with_cost(const CsrMatrix &a, index_t cost,
                                index_t min_threads)
{
    // Resolve (and build if needed) outside the census fill so the
    // lookup bookkeeping stays in one place.
    get_or_build_with_cost(a, cost, min_threads);
    index_t threads = threads_for_cost(a, cost, min_threads);
    const Key key{csr_fingerprint(a), threads, cost};
    std::lock_guard<std::mutex> lock(mutex_);
    Entry *e = find_locked(key);
    MPS_CHECK(e != nullptr, "schedule vanished between lookup and census");
    fill_census_locked(*e, a);
    return fold_census(*e);
}

uint64_t
ScheduleCache::version_with_cost(const CsrMatrix &a, index_t cost,
                                 index_t min_threads) const
{
    index_t threads = threads_for_cost(a, cost, min_threads);
    const Key key{csr_fingerprint(a), threads, cost};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.version;
}

std::shared_ptr<const HybridSchedule>
ScheduleCache::get_or_build_hybrid(const CsrMatrix &a, index_t cost,
                                   index_t min_threads)
{
    MPS_CHECK(cost >= 1, "merge-path cost must be >= 1");
    MetricsRegistry &metrics = MetricsRegistry::global();
    const Key key{csr_fingerprint(a), cost, min_threads};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = hybrids_.find(key);
    if (it != hybrids_.end()) {
        it->second.last_used = ++lru_tick_;
        ++hits_;
        if (metrics.enabled())
            metrics.counter_add("schedule.cache.hits");
        return it->second.schedule;
    }
    // Built under the lock like the merge-path entries: classification
    // is one structural pass, and serializing first-miss builds keeps
    // the one-build-per-key invariant.
    HybridEntry e;
    e.schedule = std::make_shared<const HybridSchedule>(
        HybridSchedule::build(a, cost, min_threads));
    e.cost = cost;
    e.min_threads = min_threads;
    e.last_used = ++lru_tick_;
    auto sched = e.schedule;
    hybrids_.emplace(key, std::move(e));
    evict_to_cap_locked();
    ++misses_;
    if (metrics.enabled()) {
        metrics.counter_add("schedule.cache.misses");
        metrics.gauge_set("schedule.cache.hybrid_size",
                          static_cast<double>(hybrids_.size()));
    }
    return sched;
}

uint64_t
ScheduleCache::hybrid_version_with_cost(const CsrMatrix &a, index_t cost,
                                        index_t min_threads) const
{
    const Key key{csr_fingerprint(a), cost, min_threads};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = hybrids_.find(key);
    return it == hybrids_.end() ? 0 : it->second.version;
}

size_t
ScheduleCache::hybrid_size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hybrids_.size();
}

size_t
ScheduleCache::repair_for_update(const CsrMatrix &old_a,
                                 const CsrMatrix &new_a,
                                 index_t first_dirty_row)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    const uint64_t old_fp = csr_fingerprint(old_a);
    const uint64_t new_fp = csr_fingerprint(new_a);

    std::lock_guard<std::mutex> lock(mutex_);
    // Collect first: re-keying mutates the map we'd be iterating.
    std::vector<std::pair<Key, Entry>> migrated;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (std::get<0>(it->first) == old_fp) {
            migrated.emplace_back(it->first, std::move(it->second));
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }

    for (auto &[old_key, e] : migrated) {
        ScheduleRepair r = repair_schedule(*e.schedule, old_a, new_a,
                                           first_dirty_row);
        const index_t threads = r.schedule.num_threads();
        // Refresh any cached census over the dirty thread range only;
        // chunks fully inside the clean prefix are carried over (the
        // kept boundaries AND their resolution against new_a are
        // unchanged there).
        if (!e.census_chunks.empty()) {
            const index_t chunks =
                (threads + kCensusChunk - 1) / kCensusChunk;
            std::vector<ScheduleCensusPart> fresh(
                static_cast<size_t>(chunks));
            for (index_t i = 0; i < chunks; ++i) {
                const index_t lo = i * kCensusChunk;
                const index_t hi =
                    std::min<index_t>(lo + kCensusChunk, threads);
                if (!r.rebuilt && hi <= r.dirty_begin &&
                    static_cast<size_t>(i) < e.census_chunks.size())
                    fresh[static_cast<size_t>(i)] =
                        e.census_chunks[static_cast<size_t>(i)];
                else
                    fresh[static_cast<size_t>(i)] =
                        r.schedule.census_part(new_a, lo, hi);
            }
            e.census_chunks = std::move(fresh);
        }
        e.schedule = std::make_shared<const MergePathSchedule>(
            std::move(r.schedule));
        ++e.version;
        e.last_used = ++lru_tick_;
        // Re-key the way a FUTURE lookup on new_a computes the key. A
        // by-cost entry whose threads_for_cost drifted keeps its
        // repaired (old-thread-count) schedule — still a valid
        // partition of new_a, merely not the count a fresh build would
        // pick; the next compaction or eviction converges it.
        Key new_key =
            e.by_cost
                ? Key{new_fp,
                      threads_for_cost(new_a, e.cost, e.min_threads),
                      e.cost}
                : Key{new_fp, std::get<1>(old_key),
                      cost_for_threads(new_a, std::get<1>(old_key))};
        entries_.insert_or_assign(new_key, std::move(e));
    }

    // Hybrid entries migrate the same way, through the hybrid repair
    // (partition reclassified with the entry's own params, tail
    // schedule repaired from the first dirty tail row). Their key is
    // (fingerprint, cost, min_threads), so only the fingerprint moves.
    std::vector<std::pair<Key, HybridEntry>> hybrid_migrated;
    for (auto it = hybrids_.begin(); it != hybrids_.end();) {
        if (std::get<0>(it->first) == old_fp) {
            hybrid_migrated.emplace_back(it->first,
                                         std::move(it->second));
            it = hybrids_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &[old_key, e] : hybrid_migrated) {
        e.schedule = std::make_shared<const HybridSchedule>(
            repair_hybrid_schedule(*e.schedule, old_a, new_a,
                                   first_dirty_row));
        ++e.version;
        e.last_used = ++lru_tick_;
        hybrids_.insert_or_assign(
            Key{new_fp, std::get<1>(old_key), std::get<2>(old_key)},
            std::move(e));
    }

    evict_to_cap_locked();
    if (metrics.enabled()) {
        metrics.gauge_set("schedule.cache.size",
                          static_cast<double>(entries_.size()));
        if (!hybrid_migrated.empty())
            metrics.gauge_set("schedule.cache.hybrid_size",
                              static_cast<double>(hybrids_.size()));
    }
    return migrated.size() + hybrid_migrated.size();
}

std::shared_ptr<const ReorderPlan>
ScheduleCache::get_or_build_reorder(const CsrMatrix &a, ReorderKind kind)
{
    MPS_CHECK(kind != ReorderKind::kNone,
              "identity needs no reorder plan");
    MetricsRegistry &metrics = MetricsRegistry::global();
    const ReorderKey key{csr_fingerprint(a), static_cast<int>(kind)};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = reorders_.find(key);
    if (it != reorders_.end()) {
        if (metrics.enabled())
            metrics.counter_add("locality.permutation.hits");
        return it->second;
    }
    // Built under the lock, like the schedules: the permutation is an
    // O(rows + nnz) one-off per graph, and serializing first-miss
    // builds keeps the "one plan per (graph, kind)" invariant simple.
    auto plan = std::make_shared<const ReorderPlan>(
        build_reorder_plan(a, kind));
    reorders_.emplace(key, plan);
    if (metrics.enabled()) {
        metrics.counter_add("locality.permutation.misses");
        metrics.gauge_set("locality.permutation.plans",
                          static_cast<double>(reorders_.size()));
    }
    return plan;
}

size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
ScheduleCache::reorder_size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reorders_.size();
}

int64_t
ScheduleCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

int64_t
ScheduleCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

int64_t
ScheduleCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
ScheduleCache::set_max_entries(size_t cap)
{
    MPS_CHECK(cap >= 1, "schedule cache cap must be >= 1");
    std::lock_guard<std::mutex> lock(mutex_);
    max_entries_ = cap;
    evict_to_cap_locked();
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hybrids_.clear();
    reorders_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace mps
