#include "mps/core/hybrid.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

bool
parse_hybrid_env()
{
    const char *v = std::getenv("MPS_HYBRID");
    if (v == nullptr)
        return true;
    std::string s(v);
    if (s == "0" || s == "off" || s == "false" || s == "no")
        return false;
    if (s == "1" || s == "on" || s == "true" || s == "yes" || s.empty())
        return true;
    warn("unrecognized MPS_HYBRID value '" + s +
         "' (want 0/1/on/off); hybrid dispatch stays on");
    return true;
}

int64_t
env_int64(const char *name, int64_t fallback, int64_t lo)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || parsed < lo) {
        warn(detail::format_parts("ignoring invalid ", name, "=", v));
        return fallback;
    }
    return static_cast<int64_t>(parsed);
}

double
env_double(const char *name, double fallback, double lo)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || parsed < lo) {
        warn(detail::format_parts("ignoring invalid ", name, "=", v));
        return fallback;
    }
    return parsed;
}

} // namespace

bool
hybrid_enabled()
{
    static const bool on = parse_hybrid_env();
    return on;
}

HybridParams
resolve_hybrid_params()
{
    HybridParams p;
    p.min_degree = static_cast<index_t>(
        env_int64("MPS_HYBRID_MIN_DEGREE", p.min_degree, 1));
    p.span_ratio = env_double("MPS_HYBRID_SPAN_RATIO", p.span_ratio, 1.0);
    p.min_span = static_cast<index_t>(
        env_int64("MPS_HYBRID_MIN_SPAN", p.min_span, 1));
    p.long_degree = static_cast<index_t>(
        env_int64("MPS_HYBRID_LONG_DEGREE", p.long_degree, 0));
    p.min_band_nnz = env_int64("MPS_HYBRID_MIN_BAND_NNZ", p.min_band_nnz, 1);
    return p;
}

RowClassPartition
classify_rows(const CsrMatrix &a, const HybridParams &p, index_t cost)
{
    RowClassPartition part;
    if (!hybrid_enabled())
        return part; // everything stays on the merge path
    const index_t long_deg =
        p.long_degree > 0 ? p.long_degree
                          : std::max<index_t>(cost, 32);
    const index_t *cols = a.col_idx().data();
    const auto dense_class = [&](index_t r) {
        const index_t begin = a.row_begin(r);
        const index_t end = a.row_end(r);
        const index_t deg = end - begin;
        if (deg == 0)
            return false; // empty rows cost the tail nothing
        // Long rows would span merge-path shares and pay one atomic
        // vector commit per contributing thread; the row-GEMM phase
        // processes them in one owned pass.
        if (deg >= long_deg)
            return true;
        if (deg < p.min_degree)
            return false;
        // Clustered rows: column span within the per-row budget. A
        // scan (not col[end-1] - col[begin]) because CSR inputs are not
        // required to keep rows sorted; the scan only runs on rows that
        // already passed the degree gates.
        index_t lo = cols[begin], hi = cols[begin];
        for (index_t k = begin + 1; k < end; ++k) {
            lo = std::min(lo, cols[k]);
            hi = std::max(hi, cols[k]);
        }
        const double span = static_cast<double>(hi - lo + 1);
        const double budget = std::max(p.span_ratio *
                                           static_cast<double>(deg),
                                       static_cast<double>(p.min_span));
        return span <= budget;
    };

    index_t r = 0;
    while (r < a.rows()) {
        if (!dense_class(r)) {
            ++r;
            continue;
        }
        index_t end = r + 1;
        while (end < a.rows() && dense_class(end))
            ++end;
        const int64_t run_nnz = static_cast<int64_t>(a.row_begin(end)) -
                                a.row_begin(r);
        // Runs too small to amortize a dispatch unit stay on the merge
        // path, which aggregates short rows into shares for free.
        if (run_nnz >= p.min_band_nnz) {
            part.bands.push_back({r, end});
            part.dense_rows += end - r;
            part.dense_nnz += run_nnz;
        }
        r = end;
    }
    return part;
}

namespace {

/**
 * Cut the dense bands into row chunks of roughly chunk-target merge
 * items so dense chunks and tail shares are comparable steal units. A
 * single long row always forms at least one chunk (rows are the
 * indivisible unit of the dense phase).
 */
std::vector<RowBand>
build_dense_chunks(const CsrMatrix &a, const RowClassPartition &part,
                   index_t cost)
{
    std::vector<RowBand> chunks;
    const int64_t target =
        std::max<int64_t>(static_cast<int64_t>(cost) * 4, 512);
    for (const RowBand &band : part.bands) {
        index_t begin = band.begin;
        int64_t items = 0;
        for (index_t r = band.begin; r < band.end; ++r) {
            items += 1 + (a.row_end(r) - a.row_begin(r));
            if (items >= target) {
                chunks.push_back({begin, r + 1});
                begin = r + 1;
                items = 0;
            }
        }
        if (begin < band.end)
            chunks.push_back({begin, band.end});
    }
    return chunks;
}

/** Rows of @p a outside every band, in row order. */
std::vector<index_t>
collect_tail_rows(const CsrMatrix &a, const RowClassPartition &part)
{
    std::vector<index_t> tail_rows;
    tail_rows.reserve(
        static_cast<size_t>(a.rows() - part.dense_rows));
    size_t band = 0;
    for (index_t r = 0; r < a.rows(); ++r) {
        while (band < part.bands.size() && part.bands[band].end <= r)
            ++band;
        if (band < part.bands.size() && part.bands[band].begin <= r &&
            r < part.bands[band].end)
            continue;
        tail_rows.push_back(r);
    }
    return tail_rows;
}

/** Compacted copy of @p a restricted to @p tail_rows. */
CsrMatrix
compact_tail(const CsrMatrix &a, const std::vector<index_t> &tail_rows)
{
    std::vector<index_t> row_ptr(tail_rows.size() + 1, 0);
    int64_t nnz = 0;
    for (size_t i = 0; i < tail_rows.size(); ++i) {
        nnz += a.row_end(tail_rows[i]) - a.row_begin(tail_rows[i]);
        row_ptr[i + 1] = static_cast<index_t>(nnz);
    }
    std::vector<index_t> col_idx(static_cast<size_t>(nnz));
    std::vector<value_t> values(static_cast<size_t>(nnz));
    index_t out = 0;
    for (index_t row : tail_rows) {
        for (index_t k = a.row_begin(row); k < a.row_end(row); ++k) {
            col_idx[static_cast<size_t>(out)] = a.col_idx()[k];
            values[static_cast<size_t>(out)] = a.values()[k];
            ++out;
        }
    }
    return CsrMatrix(static_cast<index_t>(tail_rows.size()), a.cols(),
                     std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

} // namespace

HybridSchedule
HybridSchedule::build(const CsrMatrix &a, index_t cost, index_t min_threads)
{
    return build(a, cost, min_threads, resolve_hybrid_params());
}

HybridSchedule
HybridSchedule::build(const CsrMatrix &a, index_t cost, index_t min_threads,
                      const HybridParams &params)
{
    MPS_CHECK(cost >= 1, "hybrid merge-path cost must be >= 1");
    HybridSchedule hs;
    hs.rows_ = a.rows();
    hs.cols_ = a.cols();
    hs.nnz_ = a.nnz();
    hs.cost_ = cost;
    hs.min_threads_ = min_threads;
    hs.params_ = params;
    hs.partition_ = classify_rows(a, params, cost);
    hs.dense_chunks_ = build_dense_chunks(a, hs.partition_, cost);

    if (!hs.partition_.has_bands()) {
        // All-tail: traverse the base matrix directly, no copy.
        hs.tail_is_base_ = true;
        hs.tail_nnz_items_ = static_cast<int64_t>(a.rows()) + a.nnz();
        hs.tail_sched_ =
            MergePathSchedule::build_with_cost(a, cost, min_threads);
    } else if (hs.partition_.all_dense(a.rows())) {
        hs.tail_is_base_ = false;
        hs.tail_nnz_items_ = 0;
    } else {
        hs.tail_rows_ = collect_tail_rows(a, hs.partition_);
        hs.tail_ = compact_tail(a, hs.tail_rows_);
        hs.tail_is_base_ = false;
        hs.tail_nnz_items_ =
            static_cast<int64_t>(hs.tail_.rows()) + hs.tail_.nnz();
        hs.tail_sched_ = MergePathSchedule::build_with_cost(
            hs.tail_, cost, min_threads);
    }
    return hs;
}

HybridSchedule
repair_hybrid_schedule(const HybridSchedule &old_hs, const CsrMatrix &old_a,
                       const CsrMatrix &new_a, index_t first_dirty_row)
{
    MPS_CHECK(new_a.rows() == old_hs.rows_,
              "hybrid repair requires an unchanged row count");
    MetricsRegistry &metrics = MetricsRegistry::global();

    HybridSchedule hs;
    hs.rows_ = new_a.rows();
    hs.cols_ = new_a.cols();
    hs.nnz_ = new_a.nnz();
    hs.cost_ = old_hs.cost_;
    hs.min_threads_ = old_hs.min_threads_;
    hs.params_ = old_hs.params_;
    // Reclassify with the schedule's own thresholds: rows before
    // first_dirty_row are structurally unchanged, so their class (and
    // thus the partition prefix) migrates verbatim; only the dirty
    // suffix can change bands.
    hs.partition_ = classify_rows(new_a, hs.params_, hs.cost_);
    hs.dense_chunks_ = build_dense_chunks(new_a, hs.partition_, hs.cost_);

    bool rebuilt_tail = false;
    if (!hs.partition_.has_bands()) {
        hs.tail_is_base_ = true;
        hs.tail_nnz_items_ =
            static_cast<int64_t>(new_a.rows()) + new_a.nnz();
        if (old_hs.tail_is_base_ && old_hs.has_tail()) {
            ScheduleRepair r = repair_schedule(old_hs.tail_sched_, old_a,
                                               new_a, first_dirty_row);
            rebuilt_tail = r.rebuilt;
            hs.tail_sched_ = std::move(r.schedule);
        } else {
            rebuilt_tail = true;
            hs.tail_sched_ = MergePathSchedule::build_with_cost(
                new_a, hs.cost_, hs.min_threads_);
        }
    } else if (hs.partition_.all_dense(new_a.rows())) {
        hs.tail_is_base_ = false;
        hs.tail_nnz_items_ = 0;
    } else {
        hs.tail_rows_ = collect_tail_rows(new_a, hs.partition_);
        hs.tail_ = compact_tail(new_a, hs.tail_rows_);
        hs.tail_is_base_ = false;
        hs.tail_nnz_items_ =
            static_cast<int64_t>(hs.tail_.rows()) + hs.tail_.nnz();
        // The tail schedule can be repaired instead of rebuilt exactly
        // when the old tail exists over the same row count and the tail
        // row SET is unchanged before the first dirty base row — then
        // the tail matrices share an identical prefix and the
        // repair_schedule() contract holds for the compacted pair.
        const auto dirty_it =
            std::lower_bound(hs.tail_rows_.begin(), hs.tail_rows_.end(),
                             first_dirty_row);
        const index_t dirty_tail = static_cast<index_t>(
            dirty_it - hs.tail_rows_.begin());
        const bool prefix_ok =
            !old_hs.tail_is_base_ && old_hs.has_tail() &&
            old_hs.tail_.rows() == hs.tail_.rows() &&
            static_cast<index_t>(old_hs.tail_rows_.size()) >=
                dirty_tail &&
            std::equal(hs.tail_rows_.begin(), dirty_it,
                       old_hs.tail_rows_.begin());
        if (prefix_ok) {
            ScheduleRepair r = repair_schedule(
                old_hs.tail_sched_, old_hs.tail_, hs.tail_, dirty_tail);
            rebuilt_tail = r.rebuilt;
            hs.tail_sched_ = std::move(r.schedule);
        } else {
            rebuilt_tail = true;
            hs.tail_sched_ = MergePathSchedule::build_with_cost(
                hs.tail_, hs.cost_, hs.min_threads_);
        }
    }

    if (metrics.enabled()) {
        metrics.counter_add("hybrid.repairs");
        if (rebuilt_tail)
            metrics.counter_add("hybrid.repair_rebuilds");
    }
    return hs;
}

namespace {

/**
 * Per-executor phase accumulator: commit census (tail) + dense row
 * counts + per-phase wall time. Cacheline-aligned, written only by the
 * owning executor; the pool's completion barrier makes the final
 * aggregation race-free.
 */
struct alignas(64) PhaseSlot
{
    int64_t tail_ns = 0;
    int64_t dense_ns = 0;
    int64_t atomics = 0;
    int64_t plains = 0;
    int64_t nnz = 0;
    int64_t dense_rows = 0;
    int64_t dense_nnz = 0;
};

/** One panel's immutable execution context for both phases. */
struct HybridPanel
{
    const CsrMatrix *a = nullptr;
    const HybridSchedule *hs = nullptr;
    const DenseMatrix *b = nullptr;
    DenseMatrix *c = nullptr;
    index_t b_col = 0;
    index_t c_col = 0;
    index_t width = 0;
    index_t prefetch = 0;
    const index_t *scatter = nullptr;
    PanelEpilogue epi = nullptr;
    const void *epi_ctx = nullptr;
    const RowKernels *rk = nullptr;
    /** B's storage mode; both phases read the shadow rows when set. */
    StorageMode bmode = StorageMode::kF32;

    index_t out_row(index_t base_row) const {
        return scatter != nullptr ? scatter[base_row] : base_row;
    }
};

/** Accumulate nnz [begin, end) of @p m into @p acc (tail phase). */
inline void
tail_accumulate(const CsrMatrix &m, const HybridPanel &p, index_t nz_begin,
                index_t nz_end, value_t *acc)
{
    const index_t *cols = m.col_idx().data();
    const value_t *vals = m.values().data();
    const index_t pf = p.prefetch;
    const index_t pf_end = pf > 0 ? m.nnz() - pf : 0;
    p.rk->zero(acc, p.width);
    switch (p.bmode) {
    case StorageMode::kBf16:
        for (index_t k = nz_begin; k < nz_end; ++k) {
            if (pf > 0 && k < pf_end) {
                const bf16_t *next = p.b->row_bf16(cols[k + pf]) + p.b_col;
                locality_prefetch(next);
                if (p.width > 32)
                    locality_prefetch(next + 32);
            }
            p.rk->axpy_bf16(acc, vals[k], p.b->row_bf16(cols[k]) + p.b_col,
                            p.width);
        }
        return;
    case StorageMode::kInt8:
        for (index_t k = nz_begin; k < nz_end; ++k) {
            if (pf > 0 && k < pf_end)
                locality_prefetch(p.b->row_int8(cols[k + pf]) + p.b_col);
            const index_t src = cols[k];
            p.rk->axpy_int8(acc, vals[k], p.b->row_int8(src) + p.b_col,
                            p.b->quant_scale(src), p.b->quant_zero(src),
                            p.width);
        }
        return;
    case StorageMode::kF32:
        break;
    }
    for (index_t k = nz_begin; k < nz_end; ++k) {
        if (pf > 0 && k < pf_end) {
            const value_t *next = p.b->row(cols[k + pf]) + p.b_col;
            locality_prefetch(next);
            if (p.width > 16)
                locality_prefetch(next + 16);
        }
        p.rk->axpy(acc, vals[k], p.b->row(cols[k]) + p.b_col, p.width);
    }
}

/** Commit @p acc to the base row behind tail-matrix row @p trow. */
inline void
tail_commit(const HybridPanel &p, const index_t *tail_rows, index_t trow,
            const value_t *acc, bool atomic)
{
    const index_t base_row =
        tail_rows != nullptr ? tail_rows[trow] : trow;
    value_t *crow = p.c->row(p.out_row(base_row)) + p.c_col;
    if (atomic) {
        p.rk->commit_atomic(crow, acc, p.width);
    } else {
        p.rk->commit_plain(crow, acc, p.width);
        // Plain commit == full row ownership, value final: the fused
        // epilogue fires here with the BASE row id so structural
        // epilogues index side inputs of the executed matrix, not the
        // compacted tail.
        if (p.epi != nullptr)
            p.epi(crow, base_row, p.c_col, p.width, p.epi_ctx);
    }
}

/** Execute tail share @p t (one merge-path thread of the tail). */
void
run_tail_share(const HybridPanel &p, index_t t, PhaseSlot *slot)
{
    const HybridSchedule &hs = *p.hs;
    const CsrMatrix &tm = hs.tail_is_base() ? *p.a : hs.tail();
    const index_t *tail_rows =
        hs.tail_is_base() ? nullptr : hs.tail_rows().data();
    value_t *acc = microkernel_scratch(p.width);
    ResolvedWork w = hs.tail_schedule().resolve(t, tm);

    if (w.has_head()) {
        tail_accumulate(tm, p, w.head_begin, w.head_end, acc);
        tail_commit(p, tail_rows, w.head_row, acc, w.head_atomic);
    }
    for (index_t row = w.first_complete_row; row < w.last_complete_row;
         ++row) {
        tail_accumulate(tm, p, tm.row_begin(row), tm.row_end(row), acc);
        tail_commit(p, tail_rows, row, acc, /*atomic=*/false);
    }
    if (w.has_tail()) {
        tail_accumulate(tm, p, w.tail_begin, w.tail_end, acc);
        tail_commit(p, tail_rows, w.tail_row, acc, w.tail_atomic);
    }

    if (slot != nullptr) {
        if (w.has_head()) {
            (w.head_atomic ? slot->atomics : slot->plains) += 1;
            slot->nnz += w.head_end - w.head_begin;
        }
        if (w.last_complete_row > w.first_complete_row) {
            slot->plains += w.last_complete_row - w.first_complete_row;
            slot->nnz += tm.row_begin(w.last_complete_row) -
                         tm.row_begin(w.first_complete_row);
        }
        if (w.has_tail()) {
            (w.tail_atomic ? slot->atomics : slot->plains) += 1;
            slot->nnz += w.tail_end - w.tail_begin;
        }
    }
}

/**
 * Execute dense chunk @p idx: per-row microkernel row-GEMM, direct
 * accumulation into the (zero-filled) output row — no scratch round
 * trip, no atomics; every band row is owned by exactly one chunk.
 */
void
run_dense_chunk(const HybridPanel &p, size_t idx, PhaseSlot *slot)
{
    const CsrMatrix &a = *p.a;
    const RowBand chunk = p.hs->dense_chunks()[idx];
    const index_t *cols = a.col_idx().data();
    const value_t *vals = a.values().data();
    const index_t pf = p.prefetch;
    const index_t pf_end = pf > 0 ? a.nnz() - pf : 0;
    for (index_t r = chunk.begin; r < chunk.end; ++r) {
        value_t *crow = p.c->row(p.out_row(r)) + p.c_col;
        const index_t row_end = a.row_end(r);
        switch (p.bmode) {
        case StorageMode::kBf16:
            for (index_t k = a.row_begin(r); k < row_end; ++k) {
                if (pf > 0 && k < pf_end)
                    locality_prefetch(p.b->row_bf16(cols[k + pf]) +
                                      p.b_col);
                p.rk->axpy_bf16(crow, vals[k],
                                p.b->row_bf16(cols[k]) + p.b_col,
                                p.width);
            }
            break;
        case StorageMode::kInt8:
            for (index_t k = a.row_begin(r); k < row_end; ++k) {
                if (pf > 0 && k < pf_end)
                    locality_prefetch(p.b->row_int8(cols[k + pf]) +
                                      p.b_col);
                const index_t src = cols[k];
                p.rk->axpy_int8(crow, vals[k],
                                p.b->row_int8(src) + p.b_col,
                                p.b->quant_scale(src),
                                p.b->quant_zero(src), p.width);
            }
            break;
        case StorageMode::kF32:
            for (index_t k = a.row_begin(r); k < row_end; ++k) {
                if (pf > 0 && k < pf_end) {
                    const value_t *next =
                        p.b->row(cols[k + pf]) + p.b_col;
                    locality_prefetch(next);
                    if (p.width > 16)
                        locality_prefetch(next + 16);
                }
                p.rk->axpy(crow, vals[k], p.b->row(cols[k]) + p.b_col,
                           p.width);
            }
            break;
        }
        if (p.epi != nullptr)
            p.epi(crow, r, p.c_col, p.width, p.epi_ctx);
    }
    if (slot != nullptr) {
        slot->dense_rows += chunk.end - chunk.begin;
        slot->dense_nnz +=
            a.row_begin(chunk.end) - a.row_begin(chunk.begin);
    }
}

void
check_hybrid_shapes(const CsrMatrix &a, const HybridSchedule &hs,
                    const DenseMatrix &b, index_t b_col0,
                    const DenseMatrix &c, index_t c_col0, index_t width)
{
    MPS_CHECK(a.rows() == hs.rows() && a.nnz() == hs.nnz(),
              "matrix does not match the prepared hybrid schedule (",
              a.rows(), "x", a.nnz(), " vs ", hs.rows(), "x", hs.nnz(),
              ")");
    MPS_CHECK(b.rows() == a.cols(), "B rows (", b.rows(),
              ") must equal A cols (", a.cols(), ")");
    MPS_CHECK(c.rows() == a.rows(), "C rows (", c.rows(),
              ") must equal A rows (", a.rows(), ")");
    MPS_CHECK(width > 0 && b_col0 >= 0 && b_col0 + width <= b.cols(),
              "B panel [", b_col0, ", ", b_col0 + width,
              ") out of range for ", b.cols(), " cols");
    MPS_CHECK(c_col0 >= 0 && c_col0 + width <= c.cols(), "C panel [",
              c_col0, ", ", c_col0 + width, ") out of range for ",
              c.cols(), " cols");
}

void
flush_phase_counters(MetricsRegistry &metrics, const PhaseSlot *slots,
                     size_t count)
{
    PhaseSlot total;
    for (size_t i = 0; i < count; ++i) {
        total.atomics += slots[i].atomics;
        total.plains += slots[i].plains;
        total.nnz += slots[i].nnz;
        total.dense_rows += slots[i].dense_rows;
        total.dense_nnz += slots[i].dense_nnz;
    }
    if (total.atomics > 0)
        metrics.counter_add("spmm.hybrid.atomic_commits", total.atomics);
    if (total.plains > 0)
        metrics.counter_add("spmm.hybrid.plain_commits", total.plains);
    if (total.nnz > 0)
        metrics.counter_add("spmm.hybrid.tail_nnz_processed", total.nnz);
    if (total.dense_rows > 0)
        metrics.counter_add("spmm.hybrid.dense_rows_written",
                            total.dense_rows);
    if (total.dense_nnz > 0)
        metrics.counter_add("spmm.hybrid.dense_nnz_processed",
                            total.dense_nnz);
}

/**
 * One two-phase panel sweep. Tail shares and dense chunks are sibling
 * indices of ONE parallel_for, so the pool's stealing rebalances
 * stragglers across the phases. @p slots (when non-null) receives the
 * census; @p timed additionally charges per-item wall time to the
 * owning phase.
 */
void
run_hybrid_panel(const HybridPanel &p, WorkStealPool &pool,
                 PhaseSlot *slots, bool timed)
{
    const HybridSchedule &hs = *p.hs;
    const uint64_t tail_shares =
        hs.has_tail()
            ? static_cast<uint64_t>(hs.tail_schedule().num_threads())
            : 0;
    const uint64_t items =
        tail_shares + static_cast<uint64_t>(hs.dense_chunks().size());
    if (items == 0)
        return;
    pool.parallel_for(items, [&](uint64_t i) {
        PhaseSlot *slot =
            slots != nullptr ? &slots[pool.current_slot()] : nullptr;
        Timer wall;
        if (i < tail_shares) {
            run_tail_share(p, static_cast<index_t>(i), slot);
            if (timed && slot != nullptr)
                slot->tail_ns += static_cast<int64_t>(wall.elapsed_ns());
        } else {
            run_dense_chunk(p, static_cast<size_t>(i - tail_shares),
                            slot);
            if (timed && slot != nullptr)
                slot->dense_ns +=
                    static_cast<int64_t>(wall.elapsed_ns());
        }
    });
}

/** Sequential counterpart of run_hybrid_panel (deterministic order). */
void
run_hybrid_panel_sequential(const HybridPanel &p, PhaseSlot *slot)
{
    const HybridSchedule &hs = *p.hs;
    if (hs.has_tail()) {
        const index_t threads = hs.tail_schedule().num_threads();
        for (index_t t = 0; t < threads; ++t)
            run_tail_share(p, t, slot);
    }
    for (size_t i = 0; i < hs.dense_chunks().size(); ++i)
        run_dense_chunk(p, i, slot);
}

HybridPanel
make_panel(const CsrMatrix &a, const HybridSchedule &hs,
           const DenseMatrix &b, index_t b_col0, DenseMatrix &c,
           index_t c_col0, index_t width, const SpmmLocality &loc,
           PanelEpilogue epi, const void *epi_ctx, const RowKernels &rk)
{
    HybridPanel p;
    p.a = &a;
    p.hs = &hs;
    p.b = &b;
    p.c = &c;
    p.b_col = b_col0;
    p.c_col = c_col0;
    p.width = width;
    p.prefetch = loc.prefetch;
    p.scatter = loc.row_scatter;
    p.epi = epi;
    p.epi_ctx = epi_ctx;
    p.rk = &rk;
    p.bmode = b.storage();
    return p;
}

} // namespace

void
hybrid_spmm_panel(const CsrMatrix &a, const HybridSchedule &hs,
                  const DenseMatrix &b, index_t b_col0, DenseMatrix &c,
                  index_t c_col0, index_t width, WorkStealPool &pool,
                  const SpmmLocality &loc, PanelEpilogue epi,
                  const void *epi_ctx, bool count_census)
{
    check_hybrid_shapes(a, hs, b, b_col0, c, c_col0, width);
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool count = count_census && metrics.enabled();
    std::vector<PhaseSlot> slots;
    if (count)
        slots.resize(pool.max_concurrency());
    const RowKernels &rk = select_row_kernels(width);
    const HybridPanel p = make_panel(a, hs, b, b_col0, c, c_col0, width,
                                     loc, epi, epi_ctx, rk);
    run_hybrid_panel(p, pool, count ? slots.data() : nullptr,
                     /*timed=*/false);
    if (count)
        flush_phase_counters(metrics, slots.data(), slots.size());
}

void
hybrid_spmm_panel(const CsrMatrix &a, const HybridSchedule &hs,
                  const DenseMatrix &b, index_t b_col0, DenseMatrix &c,
                  index_t c_col0, index_t width, const SpmmLocality &loc,
                  PanelEpilogue epi, const void *epi_ctx,
                  bool count_census)
{
    check_hybrid_shapes(a, hs, b, b_col0, c, c_col0, width);
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool count = count_census && metrics.enabled();
    PhaseSlot slot;
    const RowKernels &rk = select_row_kernels(width);
    const HybridPanel p = make_panel(a, hs, b, b_col0, c, c_col0, width,
                                     loc, epi, epi_ctx, rk);
    run_hybrid_panel_sequential(p, count ? &slot : nullptr);
    if (count)
        flush_phase_counters(metrics, &slot, 1);
}

void
hybrid_spmm_parallel(const CsrMatrix &a, const HybridSchedule &hs,
                     const DenseMatrix &b, DenseMatrix &c,
                     WorkStealPool &pool, const SpmmLocality &loc)
{
    check_hybrid_shapes(a, hs, b, 0, c, 0, b.cols());
    MPS_CHECK(c.cols() == b.cols(), "C must be A.rows x B.cols");
    ScopedSpan span("spmm.hybrid", "kernel");
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool instrumented = metrics.enabled();
    c.fill(0.0f);
    const index_t dim = b.cols();
    const index_t tile = loc.tiled(dim) ? loc.tile_d : dim;
    std::vector<PhaseSlot> slots;
    if (instrumented)
        slots.resize(pool.max_concurrency());
    int64_t sweeps = 0;
    for (index_t col = 0; col < dim; col += tile) {
        const index_t width = std::min(tile, dim - col);
        const RowKernels &rk = select_row_kernels(width);
        const HybridPanel p = make_panel(a, hs, b, col, c, col, width,
                                         loc, nullptr, nullptr, rk);
        // Census on the first panel only (it describes the schedule);
        // phase timing accumulates across all panels.
        PhaseSlot *s = instrumented ? slots.data() : nullptr;
        if (instrumented && col > 0) {
            for (PhaseSlot &slot : slots) {
                slot.atomics = slot.plains = slot.nnz = 0;
                slot.dense_rows = slot.dense_nnz = 0;
            }
        }
        run_hybrid_panel(p, pool, s, /*timed=*/instrumented);
        if (instrumented && col == 0)
            flush_phase_counters(metrics, slots.data(), slots.size());
        ++sweeps;
    }
    if (instrumented) {
        int64_t dense_ns = 0, tail_ns = 0;
        for (const PhaseSlot &slot : slots) {
            dense_ns += slot.dense_ns;
            tail_ns += slot.tail_ns;
        }
        metrics.counter_add("spmm.hybrid.runs");
        metrics.counter_add("locality.tile_sweeps", sweeps);
        metrics.histogram_record("kernel.hybrid.dense_ms",
                                 static_cast<double>(dense_ns) / 1e6);
        metrics.histogram_record("kernel.hybrid.tail_ms",
                                 static_cast<double>(tail_ns) / 1e6);
    }
}

void
hybrid_spmm_parallel(const CsrMatrix &a, const HybridSchedule &hs,
                     const DenseMatrix &b, DenseMatrix &c,
                     WorkStealPool &pool)
{
    hybrid_spmm_parallel(
        a, hs, b, c, pool,
        default_spmm_locality(b.rows(), b.cols(),
                              storage_elem_bytes(b.storage())));
}

void
hybrid_spmm_sequential(const CsrMatrix &a, const HybridSchedule &hs,
                       const DenseMatrix &b, DenseMatrix &c,
                       const SpmmLocality &loc)
{
    check_hybrid_shapes(a, hs, b, 0, c, 0, b.cols());
    MPS_CHECK(c.cols() == b.cols(), "C must be A.rows x B.cols");
    c.fill(0.0f);
    const index_t dim = b.cols();
    const index_t tile = loc.tiled(dim) ? loc.tile_d : dim;
    for (index_t col = 0; col < dim; col += tile) {
        const index_t width = std::min(tile, dim - col);
        const RowKernels &rk = select_row_kernels(width);
        const HybridPanel p = make_panel(a, hs, b, col, c, col, width,
                                         loc, nullptr, nullptr, rk);
        run_hybrid_panel_sequential(p, nullptr);
    }
}

} // namespace mps
