#include "mps/core/spmv.h"

#include <algorithm>

#include "mps/core/microkernel.h"
#include "mps/util/log.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

void
reference_spmv(const CsrMatrix &a, const std::vector<value_t> &x,
               std::vector<value_t> &y)
{
    MPS_CHECK(x.size() == static_cast<size_t>(a.cols()),
              "x length must equal A cols");
    y.assign(static_cast<size_t>(a.rows()), 0.0f);
    // Pinned to the scalar path: this is the gold kernel the
    // merge-path SpMV is checked against.
    const RowKernels &rk = select_row_kernels(0, MicrokernelPath::kScalar);
    for (index_t r = 0; r < a.rows(); ++r) {
        y[static_cast<size_t>(r)] =
            rk.gather_dot(a.values().data(), a.col_idx().data(),
                          a.row_begin(r), a.row_end(r), x.data());
    }
}

void
mergepath_spmv(const CsrMatrix &a, const std::vector<value_t> &x,
               std::vector<value_t> &y, const MergePathSchedule &sched,
               WorkStealPool &pool)
{
    MPS_CHECK(x.size() == static_cast<size_t>(a.cols()),
              "x length must equal A cols");
    y.assign(static_cast<size_t>(a.rows()), 0.0f);
    const index_t threads = sched.num_threads();

    // Two scalar carry slots per thread (partial head and tail rows).
    std::vector<index_t> carry_rows(static_cast<size_t>(threads) * 2, -1);
    std::vector<value_t> carry_vals(static_cast<size_t>(threads) * 2,
                                    0.0f);

    const value_t *vals = a.values().data();
    const index_t *cols = a.col_idx().data();
    const value_t *xp = x.data();
    pool.parallel_for(static_cast<uint64_t>(threads), [&](uint64_t ti) {
        index_t t = static_cast<index_t>(ti);
        ResolvedWork w = sched.resolve(t, a);
        if (w.has_head()) {
            value_t sum =
                row_gather_dot(vals, cols, w.head_begin, w.head_end, xp);
            if (w.head_atomic) {
                size_t slot = static_cast<size_t>(t) * 2;
                carry_rows[slot] = w.head_row;
                carry_vals[slot] = sum;
            } else {
                y[static_cast<size_t>(w.head_row)] = sum;
            }
        }
        for (index_t r = w.first_complete_row; r < w.last_complete_row;
             ++r) {
            y[static_cast<size_t>(r)] = row_gather_dot(
                vals, cols, a.row_begin(r), a.row_end(r), xp);
        }
        if (w.has_tail()) {
            size_t slot = static_cast<size_t>(t) * 2 + 1;
            carry_rows[slot] = w.tail_row;
            carry_vals[slot] =
                row_gather_dot(vals, cols, w.tail_begin, w.tail_end, xp);
        }
    });

    // Serial fix-up: one scalar add per carry.
    for (size_t slot = 0; slot < carry_rows.size(); ++slot) {
        if (carry_rows[slot] >= 0)
            y[static_cast<size_t>(carry_rows[slot])] += carry_vals[slot];
    }
}

} // namespace mps
