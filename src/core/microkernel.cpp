#include "mps/core/microkernel.h"

#include <cstdlib>
#include <string>

#include "mps/sparse/aligned_buffer.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"

#if MPS_MICROKERNEL_SIMD == 1
#include <immintrin.h>
#elif MPS_MICROKERNEL_SIMD == 2
#include <arm_neon.h>
#endif

// The scalar implementations are the portable reference the tests
// cross-check the SIMD path against. Keep the compiler from
// auto-vectorizing them, otherwise "scalar vs simd" compares AVX
// against AVX and a lane-handling bug in either path cancels out.
#if defined(__GNUC__) && !defined(__clang__)
#define MPS_SCALAR_KERNEL                                                    \
    __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define MPS_SCALAR_KERNEL
#endif

namespace mps {

namespace {

// ---------------------------------------------------------------------
// Scalar reference path
// ---------------------------------------------------------------------
namespace scalar {

MPS_SCALAR_KERNEL void
zero(value_t *row, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        row[d] = 0.0f;
}

MPS_SCALAR_KERNEL void
fill(value_t *row, value_t v, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        row[d] = v;
}

MPS_SCALAR_KERNEL void
copy(value_t *dst, const value_t *src, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] = src[d];
}

MPS_SCALAR_KERNEL void
add(value_t *acc, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] += x[d];
}

MPS_SCALAR_KERNEL void
axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] += a * x[d];
}

MPS_SCALAR_KERNEL void
scale(value_t *row, value_t a, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        row[d] *= a;
}

MPS_SCALAR_KERNEL void
scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        y[d] = a * y[d] + x[d];
}

MPS_SCALAR_KERNEL void
vmax(value_t *acc, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] = acc[d] < x[d] ? x[d] : acc[d];
}

MPS_SCALAR_KERNEL value_t
dot(const value_t *x, const value_t *y, index_t dim)
{
    value_t sum = 0.0f;
    for (index_t d = 0; d < dim; ++d)
        sum += x[d] * y[d];
    return sum;
}

MPS_SCALAR_KERNEL value_t
gather_dot(const value_t *vals, const index_t *cols, index_t begin,
           index_t end, const value_t *x)
{
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] * x[cols[k]];
    return sum;
}

MPS_SCALAR_KERNEL void
commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] += acc[d];
}

} // namespace scalar

// Atomic commits cannot vectorize; both paths share these.
void
commit_atomic_impl(value_t *dst, const value_t *acc, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        atomic_add(dst[d], acc[d]);
}

void
commit_max_atomic_impl(value_t *dst, const value_t *acc, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        atomic_max(dst[d], acc[d]);
}

void
axpy_atomic_impl(value_t *dst, value_t a, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        atomic_add(dst[d], a * x[d]);
}

constexpr RowKernels kScalarTable = {
    scalar::zero,         scalar::fill,
    scalar::copy,         scalar::add,
    scalar::axpy,         scalar::scale,
    scalar::scale_add,    scalar::vmax,
    scalar::dot,          scalar::gather_dot,
    scalar::commit_plain, commit_atomic_impl,
    commit_max_atomic_impl, axpy_atomic_impl,
    MicrokernelPath::kScalar,
    /*fixed_dim=*/0,
    "scalar",
};

#if MPS_MICROKERNEL_SIMD == 1
// ---------------------------------------------------------------------
// AVX2 (+FMA when available) path, 8 lanes of value_t per register.
// ---------------------------------------------------------------------
namespace simd {

inline __m256
fmadd(__m256 a, __m256 b, __m256 c)
{
#if defined(__FMA__)
    return _mm256_fmadd_ps(a, b, c);
#else
    return _mm256_add_ps(_mm256_mul_ps(a, b), c);
#endif
}

inline value_t
hsum(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
    return _mm_cvtss_f32(lo);
}

void
zero(value_t *row, index_t dim)
{
    const __m256 z = _mm256_setzero_ps();
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(row + d, z);
    for (; d < dim; ++d)
        row[d] = 0.0f;
}

void
fill(value_t *row, value_t v, index_t dim)
{
    const __m256 vv = _mm256_set1_ps(v);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(row + d, vv);
    for (; d < dim; ++d)
        row[d] = v;
}

void
copy(value_t *dst, const value_t *src, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(dst + d, _mm256_loadu_ps(src + d));
    for (; d < dim; ++d)
        dst[d] = src[d];
}

void
add(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d,
                         _mm256_add_ps(_mm256_loadu_ps(acc + d),
                                       _mm256_loadu_ps(x + d)));
    }
    for (; d < dim; ++d)
        acc[d] += x[d];
}

void
axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        _mm256_storeu_ps(acc + d,
                         fmadd(va, _mm256_loadu_ps(x + d),
                               _mm256_loadu_ps(acc + d)));
        _mm256_storeu_ps(acc + d + 8,
                         fmadd(va, _mm256_loadu_ps(x + d + 8),
                               _mm256_loadu_ps(acc + d + 8)));
    }
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d,
                         fmadd(va, _mm256_loadu_ps(x + d),
                               _mm256_loadu_ps(acc + d)));
    }
    for (; d < dim; ++d)
        acc[d] += a * x[d];
}

void
scale(value_t *row, value_t a, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(row + d,
                         _mm256_mul_ps(va, _mm256_loadu_ps(row + d)));
    }
    for (; d < dim; ++d)
        row[d] *= a;
}

void
scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(y + d, fmadd(va, _mm256_loadu_ps(y + d),
                                      _mm256_loadu_ps(x + d)));
    }
    for (; d < dim; ++d)
        y[d] = a * y[d] + x[d];
}

void
vmax(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d,
                         _mm256_max_ps(_mm256_loadu_ps(acc + d),
                                       _mm256_loadu_ps(x + d)));
    }
    for (; d < dim; ++d)
        acc[d] = acc[d] < x[d] ? x[d] : acc[d];
}

value_t
dot(const value_t *x, const value_t *y, index_t dim)
{
    __m256 acc = _mm256_setzero_ps();
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        acc = fmadd(_mm256_loadu_ps(x + d), _mm256_loadu_ps(y + d),
                    acc);
    }
    value_t sum = hsum(acc);
    for (; d < dim; ++d)
        sum += x[d] * y[d];
    return sum;
}

value_t
gather_dot(const value_t *vals, const index_t *cols, index_t begin,
           index_t end, const value_t *x)
{
    __m256 acc = _mm256_setzero_ps();
    index_t k = begin;
    for (; k + 8 <= end; k += 8) {
        __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(cols + k));
        __m256 xv = _mm256_i32gather_ps(x, idx, 4);
        acc = fmadd(_mm256_loadu_ps(vals + k), xv, acc);
    }
    value_t sum = hsum(acc);
    for (; k < end; ++k)
        sum += vals[k] * x[cols[k]];
    return sum;
}

void
commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    add(dst, acc, dim);
}

// Fully unrolled fixed-dimension variants of the inner-loop hot set.
// DIM must be a multiple of 8; the selector only hands these out for
// d in {16, 32, 64}, where the trip count is a compile-time constant
// and the loop disappears entirely.

template <index_t DIM>
void
zero_fixed(value_t *row, index_t /*dim*/)
{
    const __m256 z = _mm256_setzero_ps();
    for (index_t d = 0; d < DIM; d += 8)
        _mm256_storeu_ps(row + d, z);
}

template <index_t DIM>
void
add_fixed(value_t *acc, const value_t *x, index_t /*dim*/)
{
    for (index_t d = 0; d < DIM; d += 8) {
        _mm256_storeu_ps(acc + d,
                         _mm256_add_ps(_mm256_loadu_ps(acc + d),
                                       _mm256_loadu_ps(x + d)));
    }
}

template <index_t DIM>
void
axpy_fixed(value_t *acc, value_t a, const value_t *x, index_t /*dim*/)
{
    const __m256 va = _mm256_set1_ps(a);
    for (index_t d = 0; d < DIM; d += 8) {
        _mm256_storeu_ps(acc + d,
                         fmadd(va, _mm256_loadu_ps(x + d),
                               _mm256_loadu_ps(acc + d)));
    }
}

template <index_t DIM>
void
commit_plain_fixed(value_t *dst, const value_t *acc, index_t /*dim*/)
{
    add_fixed<DIM>(dst, acc, DIM);
}

} // namespace simd

constexpr RowKernels kSimdGeneric = {
    simd::zero,         simd::fill,
    simd::copy,         simd::add,
    simd::axpy,         simd::scale,
    simd::scale_add,    simd::vmax,
    simd::dot,          simd::gather_dot,
    simd::commit_plain, commit_atomic_impl,
    commit_max_atomic_impl, axpy_atomic_impl,
    MicrokernelPath::kSimd,
    /*fixed_dim=*/0,
    "simd",
};

template <index_t DIM>
constexpr RowKernels
make_fixed_table(const char *table_name)
{
    RowKernels t = kSimdGeneric;
    t.zero = simd::zero_fixed<DIM>;
    t.add = simd::add_fixed<DIM>;
    t.axpy = simd::axpy_fixed<DIM>;
    t.commit_plain = simd::commit_plain_fixed<DIM>;
    t.fixed_dim = DIM;
    t.name = table_name;
    return t;
}

constexpr RowKernels kSimd16 = make_fixed_table<16>("simd16");
constexpr RowKernels kSimd32 = make_fixed_table<32>("simd32");
constexpr RowKernels kSimd64 = make_fixed_table<64>("simd64");

#elif MPS_MICROKERNEL_SIMD == 2
// ---------------------------------------------------------------------
// NEON path, 4 lanes of value_t per register. No fixed-dimension
// tables: at 4 lanes the generic loop is already dense enough.
// ---------------------------------------------------------------------
namespace simd {

inline float32x4_t
fmadd(float32x4_t a, float32x4_t b, float32x4_t c)
{
    return vfmaq_f32(c, a, b);
}

void
zero(value_t *row, index_t dim)
{
    const float32x4_t z = vdupq_n_f32(0.0f);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(row + d, z);
    for (; d < dim; ++d)
        row[d] = 0.0f;
}

void
fill(value_t *row, value_t v, index_t dim)
{
    const float32x4_t vv = vdupq_n_f32(v);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(row + d, vv);
    for (; d < dim; ++d)
        row[d] = v;
}

void
copy(value_t *dst, const value_t *src, index_t dim)
{
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(dst + d, vld1q_f32(src + d));
    for (; d < dim; ++d)
        dst[d] = src[d];
}

void
add(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(acc + d, vaddq_f32(vld1q_f32(acc + d),
                                     vld1q_f32(x + d)));
    for (; d < dim; ++d)
        acc[d] += x[d];
}

void
axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    const float32x4_t va = vdupq_n_f32(a);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4) {
        vst1q_f32(acc + d,
                  fmadd(va, vld1q_f32(x + d), vld1q_f32(acc + d)));
    }
    for (; d < dim; ++d)
        acc[d] += a * x[d];
}

void
scale(value_t *row, value_t a, index_t dim)
{
    const float32x4_t va = vdupq_n_f32(a);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(row + d, vmulq_f32(va, vld1q_f32(row + d)));
    for (; d < dim; ++d)
        row[d] *= a;
}

void
scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    const float32x4_t va = vdupq_n_f32(a);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4) {
        vst1q_f32(y + d,
                  fmadd(va, vld1q_f32(y + d), vld1q_f32(x + d)));
    }
    for (; d < dim; ++d)
        y[d] = a * y[d] + x[d];
}

void
vmax(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(acc + d, vmaxq_f32(vld1q_f32(acc + d),
                                     vld1q_f32(x + d)));
    for (; d < dim; ++d)
        acc[d] = acc[d] < x[d] ? x[d] : acc[d];
}

value_t
dot(const value_t *x, const value_t *y, index_t dim)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        acc = fmadd(vld1q_f32(x + d), vld1q_f32(y + d), acc);
    value_t sum = vaddvq_f32(acc);
    for (; d < dim; ++d)
        sum += x[d] * y[d];
    return sum;
}

value_t
gather_dot(const value_t *vals, const index_t *cols, index_t begin,
           index_t end, const value_t *x)
{
    // NEON has no gather; the scalar loop is the honest form.
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] * x[cols[k]];
    return sum;
}

void
commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    add(dst, acc, dim);
}

} // namespace simd

constexpr RowKernels kSimdGeneric = {
    simd::zero,         simd::fill,
    simd::copy,         simd::add,
    simd::axpy,         simd::scale,
    simd::scale_add,    simd::vmax,
    simd::dot,          simd::gather_dot,
    simd::commit_plain, commit_atomic_impl,
    commit_max_atomic_impl, axpy_atomic_impl,
    MicrokernelPath::kSimd,
    /*fixed_dim=*/0,
    "simd",
};
#endif // MPS_MICROKERNEL_SIMD

} // namespace

const char *
microkernel_path_name(MicrokernelPath path)
{
    return path == MicrokernelPath::kSimd ? "simd" : "scalar";
}

MicrokernelPath
microkernel_default_path()
{
    static const MicrokernelPath resolved = [] {
        MicrokernelPath p = microkernel_simd_compiled()
                                ? MicrokernelPath::kSimd
                                : MicrokernelPath::kScalar;
        if (const char *env = std::getenv("MPS_MICROKERNEL")) {
            const std::string v(env);
            if (v == "scalar") {
                p = MicrokernelPath::kScalar;
            } else if (v == "simd") {
                if (microkernel_simd_compiled()) {
                    p = MicrokernelPath::kSimd;
                } else {
                    warn("MPS_MICROKERNEL=simd but no SIMD path was "
                         "compiled in; using scalar");
                    p = MicrokernelPath::kScalar;
                }
            } else if (!v.empty()) {
                warn("unknown MPS_MICROKERNEL value '" + v +
                     "' (scalar|simd); using default");
            }
        }
        MetricsRegistry &metrics = MetricsRegistry::global();
        if (metrics.enabled()) {
            const bool simd_on = p == MicrokernelPath::kSimd;
            metrics.gauge_set("microkernel.simd", simd_on ? 1.0 : 0.0);
            metrics.gauge_set(
                "microkernel.vector_width",
                simd_on ? static_cast<double>(microkernel_vector_width())
                        : 1.0);
        }
        return p;
    }();
    return resolved;
}

const RowKernels &
select_row_kernels(index_t dim, MicrokernelPath path)
{
#if MPS_MICROKERNEL_SIMD
    if (path == MicrokernelPath::kSimd) {
#if MPS_MICROKERNEL_SIMD == 1
        switch (dim) {
          case 16:
            return kSimd16;
          case 32:
            return kSimd32;
          case 64:
            return kSimd64;
          default:
            return kSimdGeneric;
        }
#else
        (void)dim;
        return kSimdGeneric;
#endif
    }
#else
    (void)path;
#endif
    (void)dim;
    return kScalarTable;
}

const RowKernels &
select_row_kernels(index_t dim)
{
    return select_row_kernels(dim, microkernel_default_path());
}

void
row_zero(value_t *row, index_t dim)
{
    select_row_kernels(dim).zero(row, dim);
}

void
row_fill(value_t *row, value_t v, index_t dim)
{
    select_row_kernels(dim).fill(row, v, dim);
}

void
row_copy(value_t *dst, const value_t *src, index_t dim)
{
    select_row_kernels(dim).copy(dst, src, dim);
}

void
row_add(value_t *acc, const value_t *x, index_t dim)
{
    select_row_kernels(dim).add(acc, x, dim);
}

void
row_axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    select_row_kernels(dim).axpy(acc, a, x, dim);
}

void
row_scale(value_t *row, value_t a, index_t dim)
{
    select_row_kernels(dim).scale(row, a, dim);
}

void
row_scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    select_row_kernels(dim).scale_add(y, a, x, dim);
}

void
row_max(value_t *acc, const value_t *x, index_t dim)
{
    select_row_kernels(dim).vmax(acc, x, dim);
}

value_t
row_dot(const value_t *x, const value_t *y, index_t dim)
{
    return select_row_kernels(dim).dot(x, y, dim);
}

value_t
row_gather_dot(const value_t *vals, const index_t *cols, index_t begin,
               index_t end, const value_t *x)
{
    return select_row_kernels(end - begin).gather_dot(vals, cols, begin,
                                                      end, x);
}

void
row_commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    select_row_kernels(dim).commit_plain(dst, acc, dim);
}

void
row_commit_atomic(value_t *dst, const value_t *acc, index_t dim)
{
    select_row_kernels(dim).commit_atomic(dst, acc, dim);
}

value_t *
microkernel_scratch(index_t dim)
{
    thread_local AlignedVector buf;
    if (static_cast<index_t>(buf.size()) < dim)
        buf.resize(static_cast<size_t>(padded_row_length(dim)));
    return buf.data();
}

} // namespace mps
