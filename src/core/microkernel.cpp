#include "mps/core/microkernel.h"

#include <cstdlib>
#include <string>

#include "mps/sparse/aligned_buffer.h"
#include "mps/sparse/quant.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"

#if MPS_MICROKERNEL_SIMD == 1
#include <immintrin.h>
#elif MPS_MICROKERNEL_SIMD == 2
#include <arm_neon.h>
#endif

// The scalar implementations are the portable reference the tests
// cross-check the SIMD path against. Keep the compiler from
// auto-vectorizing them, otherwise "scalar vs simd" compares AVX
// against AVX and a lane-handling bug in either path cancels out.
#if defined(__GNUC__) && !defined(__clang__)
#define MPS_SCALAR_KERNEL                                                    \
    __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define MPS_SCALAR_KERNEL
#endif

namespace mps {

namespace {

// ---------------------------------------------------------------------
// Scalar reference path
// ---------------------------------------------------------------------
namespace scalar {

MPS_SCALAR_KERNEL void
zero(value_t *row, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        row[d] = 0.0f;
}

MPS_SCALAR_KERNEL void
fill(value_t *row, value_t v, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        row[d] = v;
}

MPS_SCALAR_KERNEL void
copy(value_t *dst, const value_t *src, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] = src[d];
}

MPS_SCALAR_KERNEL void
add(value_t *acc, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] += x[d];
}

MPS_SCALAR_KERNEL void
axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] += a * x[d];
}

MPS_SCALAR_KERNEL void
scale(value_t *row, value_t a, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        row[d] *= a;
}

MPS_SCALAR_KERNEL void
scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        y[d] = a * y[d] + x[d];
}

MPS_SCALAR_KERNEL void
vmax(value_t *acc, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] = acc[d] < x[d] ? x[d] : acc[d];
}

MPS_SCALAR_KERNEL value_t
dot(const value_t *x, const value_t *y, index_t dim)
{
    value_t sum = 0.0f;
    for (index_t d = 0; d < dim; ++d)
        sum += x[d] * y[d];
    return sum;
}

MPS_SCALAR_KERNEL value_t
gather_dot(const value_t *vals, const index_t *cols, index_t begin,
           index_t end, const value_t *x)
{
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] * x[cols[k]];
    return sum;
}

MPS_SCALAR_KERNEL void
commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] += acc[d];
}

// Mixed-precision reference kernels: the quant.h scalar primitives in
// the un-autovectorized loop shape. These define the semantics the
// SIMD variants must reproduce bit-for-bit.

MPS_SCALAR_KERNEL void
axpy_bf16(value_t *acc, value_t a, const bf16_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        acc[d] += a * bf16_decode(x[d]);
}

MPS_SCALAR_KERNEL value_t
dot_bf16(const value_t *x, const bf16_t *y, index_t dim)
{
    value_t sum = 0.0f;
    for (index_t d = 0; d < dim; ++d)
        sum += x[d] * bf16_decode(y[d]);
    return sum;
}

MPS_SCALAR_KERNEL value_t
gather_dot_bf16(const value_t *vals, const index_t *cols, index_t begin,
                index_t end, const bf16_t *x)
{
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] * bf16_decode(x[cols[k]]);
    return sum;
}

MPS_SCALAR_KERNEL void
encode_bf16(bf16_t *dst, const value_t *src, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] = bf16_encode(src[d]);
}

MPS_SCALAR_KERNEL void
decode_bf16(value_t *dst, const bf16_t *src, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] = bf16_decode(src[d]);
}

MPS_SCALAR_KERNEL void
axpy_int8(value_t *acc, value_t a, const int8_t *x, value_t scale,
          value_t zero, index_t dim)
{
    // acc += a * (scale*q + zero) as (acc + a*zero) + (a*scale)*q:
    // two row-invariant products hoist out and the loop is one fma
    // per element — the SIMD path uses the same association.
    const value_t as = a * scale;
    const value_t az = a * zero;
    for (index_t d = 0; d < dim; ++d)
        acc[d] = (acc[d] + az) + as * static_cast<value_t>(x[d]);
}

MPS_SCALAR_KERNEL value_t
dot_int8(const value_t *x, const int8_t *y, value_t scale, value_t zero,
         index_t dim)
{
    value_t sum = 0.0f;
    for (index_t d = 0; d < dim; ++d)
        sum += x[d] * (scale * static_cast<value_t>(y[d]) + zero);
    return sum;
}

MPS_SCALAR_KERNEL value_t
gather_dot_int8(const value_t *vals, const index_t *cols, index_t begin,
                index_t end, const int8_t *x, value_t scale,
                value_t zero)
{
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] *
               (scale * static_cast<value_t>(x[cols[k]]) + zero);
    return sum;
}

MPS_SCALAR_KERNEL void
encode_int8(int8_t *dst, const value_t *src, value_t scale, value_t zero,
            index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] = int8_encode(src[d], scale, zero);
}

MPS_SCALAR_KERNEL void
decode_int8(value_t *dst, const int8_t *src, value_t scale, value_t zero,
            index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        dst[d] = int8_decode(src[d], scale, zero);
}

} // namespace scalar

// Atomic commits cannot vectorize; both paths share these.
void
commit_atomic_impl(value_t *dst, const value_t *acc, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        atomic_add(dst[d], acc[d]);
}

void
commit_max_atomic_impl(value_t *dst, const value_t *acc, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        atomic_max(dst[d], acc[d]);
}

void
axpy_atomic_impl(value_t *dst, value_t a, const value_t *x, index_t dim)
{
    for (index_t d = 0; d < dim; ++d)
        atomic_add(dst[d], a * x[d]);
}

constexpr RowKernels kScalarTable = {
    scalar::zero,         scalar::fill,
    scalar::copy,         scalar::add,
    scalar::axpy,         scalar::scale,
    scalar::scale_add,    scalar::vmax,
    scalar::dot,          scalar::gather_dot,
    scalar::commit_plain, commit_atomic_impl,
    commit_max_atomic_impl, axpy_atomic_impl,
    scalar::axpy_bf16,    scalar::dot_bf16,
    scalar::gather_dot_bf16,
    scalar::encode_bf16,  scalar::decode_bf16,
    scalar::axpy_int8,    scalar::dot_int8,
    scalar::gather_dot_int8,
    scalar::encode_int8,  scalar::decode_int8,
    MicrokernelPath::kScalar,
    /*fixed_dim=*/0,
    "scalar",
};

#if MPS_MICROKERNEL_SIMD == 1
// ---------------------------------------------------------------------
// AVX2 (+FMA when available) path, 8 lanes of value_t per register.
// ---------------------------------------------------------------------
namespace simd {

inline __m256
fmadd(__m256 a, __m256 b, __m256 c)
{
#if defined(__FMA__)
    return _mm256_fmadd_ps(a, b, c);
#else
    return _mm256_add_ps(_mm256_mul_ps(a, b), c);
#endif
}

inline value_t
hsum(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
    return _mm_cvtss_f32(lo);
}

void
zero(value_t *row, index_t dim)
{
    const __m256 z = _mm256_setzero_ps();
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(row + d, z);
    for (; d < dim; ++d)
        row[d] = 0.0f;
}

void
fill(value_t *row, value_t v, index_t dim)
{
    const __m256 vv = _mm256_set1_ps(v);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(row + d, vv);
    for (; d < dim; ++d)
        row[d] = v;
}

void
copy(value_t *dst, const value_t *src, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(dst + d, _mm256_loadu_ps(src + d));
    for (; d < dim; ++d)
        dst[d] = src[d];
}

void
add(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d,
                         _mm256_add_ps(_mm256_loadu_ps(acc + d),
                                       _mm256_loadu_ps(x + d)));
    }
    for (; d < dim; ++d)
        acc[d] += x[d];
}

void
axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        _mm256_storeu_ps(acc + d,
                         fmadd(va, _mm256_loadu_ps(x + d),
                               _mm256_loadu_ps(acc + d)));
        _mm256_storeu_ps(acc + d + 8,
                         fmadd(va, _mm256_loadu_ps(x + d + 8),
                               _mm256_loadu_ps(acc + d + 8)));
    }
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d,
                         fmadd(va, _mm256_loadu_ps(x + d),
                               _mm256_loadu_ps(acc + d)));
    }
    for (; d < dim; ++d)
        acc[d] += a * x[d];
}

void
scale(value_t *row, value_t a, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(row + d,
                         _mm256_mul_ps(va, _mm256_loadu_ps(row + d)));
    }
    for (; d < dim; ++d)
        row[d] *= a;
}

void
scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(y + d, fmadd(va, _mm256_loadu_ps(y + d),
                                      _mm256_loadu_ps(x + d)));
    }
    for (; d < dim; ++d)
        y[d] = a * y[d] + x[d];
}

void
vmax(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d,
                         _mm256_max_ps(_mm256_loadu_ps(acc + d),
                                       _mm256_loadu_ps(x + d)));
    }
    for (; d < dim; ++d)
        acc[d] = acc[d] < x[d] ? x[d] : acc[d];
}

value_t
dot(const value_t *x, const value_t *y, index_t dim)
{
    __m256 acc = _mm256_setzero_ps();
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        acc = fmadd(_mm256_loadu_ps(x + d), _mm256_loadu_ps(y + d),
                    acc);
    }
    value_t sum = hsum(acc);
    for (; d < dim; ++d)
        sum += x[d] * y[d];
    return sum;
}

value_t
gather_dot(const value_t *vals, const index_t *cols, index_t begin,
           index_t end, const value_t *x)
{
    __m256 acc = _mm256_setzero_ps();
    index_t k = begin;
    for (; k + 8 <= end; k += 8) {
        __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(cols + k));
        __m256 xv = _mm256_i32gather_ps(x, idx, 4);
        acc = fmadd(_mm256_loadu_ps(vals + k), xv, acc);
    }
    value_t sum = hsum(acc);
    for (; k < end; ++k)
        sum += vals[k] * x[cols[k]];
    return sum;
}

void
commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    add(dst, acc, dim);
}

// ---------------------------------------------------------------------
// Mixed-precision variants: the operand widens to fp32 IN REGISTERS
// (bf16: zero-extend 16-bit halves and shift into the high mantissa;
// int8: sign-extend bytes, convert, and fold the affine (scale, zero)
// into the axpy coefficient), accumulators stay fp32.
// ---------------------------------------------------------------------

/** Widen 8 bf16 values at @p p to an fp32 vector. */
inline __m256
load_bf16x8(const bf16_t *p)
{
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
}

/** Widen 8 int8 codes at @p p to an fp32 vector (no scale applied). */
inline __m256
load_int8x8(const int8_t *p)
{
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
    return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

void
axpy_bf16(value_t *acc, value_t a, const bf16_t *x, index_t dim)
{
    const __m256 va = _mm256_set1_ps(a);
    index_t d = 0;
    for (; d + 16 <= dim; d += 16) {
        _mm256_storeu_ps(acc + d, fmadd(va, load_bf16x8(x + d),
                                        _mm256_loadu_ps(acc + d)));
        _mm256_storeu_ps(acc + d + 8,
                         fmadd(va, load_bf16x8(x + d + 8),
                               _mm256_loadu_ps(acc + d + 8)));
    }
    for (; d + 8 <= dim; d += 8) {
        _mm256_storeu_ps(acc + d, fmadd(va, load_bf16x8(x + d),
                                        _mm256_loadu_ps(acc + d)));
    }
    for (; d < dim; ++d)
        acc[d] += a * bf16_decode(x[d]);
}

value_t
dot_bf16(const value_t *x, const bf16_t *y, index_t dim)
{
    __m256 acc = _mm256_setzero_ps();
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        acc = fmadd(_mm256_loadu_ps(x + d), load_bf16x8(y + d), acc);
    value_t sum = hsum(acc);
    for (; d < dim; ++d)
        sum += x[d] * bf16_decode(y[d]);
    return sum;
}

value_t
gather_dot_bf16(const value_t *vals, const index_t *cols, index_t begin,
                index_t end, const bf16_t *x)
{
    // AVX2 gathers are 32-bit granular: gathering 16-bit elements
    // would read past the buffer for the last column. Scalar decode
    // keeps the loads exact-width (same reasoning as the NEON
    // gather); the bandwidth win is already in the halved buffer.
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] * bf16_decode(x[cols[k]]);
    return sum;
}

void
encode_bf16(bf16_t *dst, const value_t *src, index_t dim)
{
    const __m256i bias = _mm256_set1_epi32(0x7fff);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i quiet = _mm256_set1_epi32(0x0040);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        const __m256 f = _mm256_loadu_ps(src + d);
        const __m256i u = _mm256_castps_si256(f);
        // Round-to-nearest-even: u += 0x7fff + lsb(u >> 16).
        const __m256i lsb =
            _mm256_and_si256(_mm256_srli_epi32(u, 16), one);
        const __m256i rounded = _mm256_srli_epi32(
            _mm256_add_epi32(u, _mm256_add_epi32(bias, lsb)), 16);
        // NaN lanes skip rounding (it could carry into the exponent
        // and produce inf) and force a quiet bit instead.
        const __m256i nan = _mm256_or_si256(_mm256_srli_epi32(u, 16),
                                            quiet);
        const __m256i unord = _mm256_castps_si256(
            _mm256_cmp_ps(f, f, _CMP_UNORD_Q));
        const __m256i h32 = _mm256_blendv_epi8(rounded, nan, unord);
        // 8 x u32 (each <= 0xffff) -> 8 contiguous u16.
        const __m256i packed =
            _mm256_packus_epi32(h32, _mm256_setzero_si256());
        const __m256i lanes = _mm256_permute4x64_epi64(packed, 0x08);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + d),
                         _mm256_castsi256_si128(lanes));
    }
    for (; d < dim; ++d)
        dst[d] = bf16_encode(src[d]);
}

void
decode_bf16(value_t *dst, const bf16_t *src, index_t dim)
{
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(dst + d, load_bf16x8(src + d));
    for (; d < dim; ++d)
        dst[d] = bf16_decode(src[d]);
}

void
axpy_int8(value_t *acc, value_t a, const int8_t *x, value_t scale,
          value_t zero, index_t dim)
{
    // acc = (acc + a*zero) + (a*scale) * q — same association as the
    // scalar reference.
    const __m256 vas = _mm256_set1_ps(a * scale);
    const __m256 vaz = _mm256_set1_ps(a * zero);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        const __m256 base =
            _mm256_add_ps(_mm256_loadu_ps(acc + d), vaz);
        _mm256_storeu_ps(acc + d, fmadd(vas, load_int8x8(x + d), base));
    }
    const value_t as = a * scale;
    const value_t az = a * zero;
    for (; d < dim; ++d)
        acc[d] = (acc[d] + az) + as * static_cast<value_t>(x[d]);
}

value_t
dot_int8(const value_t *x, const int8_t *y, value_t scale, value_t zero,
         index_t dim)
{
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256 vz = _mm256_set1_ps(zero);
    __m256 acc = _mm256_setzero_ps();
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        const __m256 yv = fmadd(vs, load_int8x8(y + d), vz);
        acc = fmadd(_mm256_loadu_ps(x + d), yv, acc);
    }
    value_t sum = hsum(acc);
    for (; d < dim; ++d)
        sum += x[d] * (scale * static_cast<value_t>(y[d]) + zero);
    return sum;
}

value_t
gather_dot_int8(const value_t *vals, const index_t *cols, index_t begin,
                index_t end, const int8_t *x, value_t scale,
                value_t zero)
{
    // Same exact-width-load argument as gather_dot_bf16.
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] *
               (scale * static_cast<value_t>(x[cols[k]]) + zero);
    return sum;
}

void
encode_int8(int8_t *dst, const value_t *src, value_t scale, value_t zero,
            index_t dim)
{
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256 vz = _mm256_set1_ps(zero);
    const __m256 lo = _mm256_set1_ps(-127.0f);
    const __m256 hi = _mm256_set1_ps(127.0f);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8) {
        // True division (not reciprocal multiply) and explicit RNE
        // rounding: bit-parity with the scalar nearbyintf reference.
        const __m256 q = _mm256_round_ps(
            _mm256_div_ps(
                _mm256_sub_ps(_mm256_loadu_ps(src + d), vz), vs),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        // max_ps propagates the second operand on NaN, so NaN lanes
        // saturate to -127 exactly like the scalar std::max order.
        const __m256 c = _mm256_min_ps(_mm256_max_ps(q, lo), hi);
        const __m256i i32 = _mm256_cvtps_epi32(c);
        const __m256i i16 =
            _mm256_packs_epi32(i32, _mm256_setzero_si256());
        const __m128i lanes = _mm256_castsi256_si128(
            _mm256_permute4x64_epi64(i16, 0x08));
        const __m128i i8 = _mm_packs_epi16(lanes, _mm_setzero_si128());
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + d), i8);
    }
    for (; d < dim; ++d)
        dst[d] = int8_encode(src[d], scale, zero);
}

void
decode_int8(value_t *dst, const int8_t *src, value_t scale, value_t zero,
            index_t dim)
{
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256 vz = _mm256_set1_ps(zero);
    index_t d = 0;
    for (; d + 8 <= dim; d += 8)
        _mm256_storeu_ps(dst + d, fmadd(vs, load_int8x8(src + d), vz));
    for (; d < dim; ++d)
        dst[d] = int8_decode(src[d], scale, zero);
}

// Fully unrolled fixed-dimension variants of the inner-loop hot set.
// DIM must be a multiple of 8; the selector only hands these out for
// d in {16, 32, 64}, where the trip count is a compile-time constant
// and the loop disappears entirely.

template <index_t DIM>
void
zero_fixed(value_t *row, index_t /*dim*/)
{
    const __m256 z = _mm256_setzero_ps();
    for (index_t d = 0; d < DIM; d += 8)
        _mm256_storeu_ps(row + d, z);
}

template <index_t DIM>
void
add_fixed(value_t *acc, const value_t *x, index_t /*dim*/)
{
    for (index_t d = 0; d < DIM; d += 8) {
        _mm256_storeu_ps(acc + d,
                         _mm256_add_ps(_mm256_loadu_ps(acc + d),
                                       _mm256_loadu_ps(x + d)));
    }
}

template <index_t DIM>
void
axpy_fixed(value_t *acc, value_t a, const value_t *x, index_t /*dim*/)
{
    const __m256 va = _mm256_set1_ps(a);
    for (index_t d = 0; d < DIM; d += 8) {
        _mm256_storeu_ps(acc + d,
                         fmadd(va, _mm256_loadu_ps(x + d),
                               _mm256_loadu_ps(acc + d)));
    }
}

template <index_t DIM>
void
commit_plain_fixed(value_t *dst, const value_t *acc, index_t /*dim*/)
{
    add_fixed<DIM>(dst, acc, DIM);
}

template <index_t DIM>
void
axpy_bf16_fixed(value_t *acc, value_t a, const bf16_t *x,
                index_t /*dim*/)
{
    const __m256 va = _mm256_set1_ps(a);
    for (index_t d = 0; d < DIM; d += 8) {
        _mm256_storeu_ps(acc + d, fmadd(va, load_bf16x8(x + d),
                                        _mm256_loadu_ps(acc + d)));
    }
}

template <index_t DIM>
void
axpy_int8_fixed(value_t *acc, value_t a, const int8_t *x, value_t scale,
                value_t zero, index_t /*dim*/)
{
    const __m256 vas = _mm256_set1_ps(a * scale);
    const __m256 vaz = _mm256_set1_ps(a * zero);
    for (index_t d = 0; d < DIM; d += 8) {
        const __m256 base =
            _mm256_add_ps(_mm256_loadu_ps(acc + d), vaz);
        _mm256_storeu_ps(acc + d, fmadd(vas, load_int8x8(x + d), base));
    }
}

} // namespace simd

constexpr RowKernels kSimdGeneric = {
    simd::zero,         simd::fill,
    simd::copy,         simd::add,
    simd::axpy,         simd::scale,
    simd::scale_add,    simd::vmax,
    simd::dot,          simd::gather_dot,
    simd::commit_plain, commit_atomic_impl,
    commit_max_atomic_impl, axpy_atomic_impl,
    simd::axpy_bf16,    simd::dot_bf16,
    simd::gather_dot_bf16,
    simd::encode_bf16,  simd::decode_bf16,
    simd::axpy_int8,    simd::dot_int8,
    simd::gather_dot_int8,
    simd::encode_int8,  simd::decode_int8,
    MicrokernelPath::kSimd,
    /*fixed_dim=*/0,
    "simd",
};

template <index_t DIM>
constexpr RowKernels
make_fixed_table(const char *table_name)
{
    RowKernels t = kSimdGeneric;
    t.zero = simd::zero_fixed<DIM>;
    t.add = simd::add_fixed<DIM>;
    t.axpy = simd::axpy_fixed<DIM>;
    t.commit_plain = simd::commit_plain_fixed<DIM>;
    t.axpy_bf16 = simd::axpy_bf16_fixed<DIM>;
    t.axpy_int8 = simd::axpy_int8_fixed<DIM>;
    t.fixed_dim = DIM;
    t.name = table_name;
    return t;
}

constexpr RowKernels kSimd16 = make_fixed_table<16>("simd16");
constexpr RowKernels kSimd32 = make_fixed_table<32>("simd32");
constexpr RowKernels kSimd64 = make_fixed_table<64>("simd64");

#elif MPS_MICROKERNEL_SIMD == 2
// ---------------------------------------------------------------------
// NEON path, 4 lanes of value_t per register. No fixed-dimension
// tables: at 4 lanes the generic loop is already dense enough.
// ---------------------------------------------------------------------
namespace simd {

inline float32x4_t
fmadd(float32x4_t a, float32x4_t b, float32x4_t c)
{
    return vfmaq_f32(c, a, b);
}

void
zero(value_t *row, index_t dim)
{
    const float32x4_t z = vdupq_n_f32(0.0f);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(row + d, z);
    for (; d < dim; ++d)
        row[d] = 0.0f;
}

void
fill(value_t *row, value_t v, index_t dim)
{
    const float32x4_t vv = vdupq_n_f32(v);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(row + d, vv);
    for (; d < dim; ++d)
        row[d] = v;
}

void
copy(value_t *dst, const value_t *src, index_t dim)
{
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(dst + d, vld1q_f32(src + d));
    for (; d < dim; ++d)
        dst[d] = src[d];
}

void
add(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(acc + d, vaddq_f32(vld1q_f32(acc + d),
                                     vld1q_f32(x + d)));
    for (; d < dim; ++d)
        acc[d] += x[d];
}

void
axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    const float32x4_t va = vdupq_n_f32(a);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4) {
        vst1q_f32(acc + d,
                  fmadd(va, vld1q_f32(x + d), vld1q_f32(acc + d)));
    }
    for (; d < dim; ++d)
        acc[d] += a * x[d];
}

void
scale(value_t *row, value_t a, index_t dim)
{
    const float32x4_t va = vdupq_n_f32(a);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(row + d, vmulq_f32(va, vld1q_f32(row + d)));
    for (; d < dim; ++d)
        row[d] *= a;
}

void
scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    const float32x4_t va = vdupq_n_f32(a);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4) {
        vst1q_f32(y + d,
                  fmadd(va, vld1q_f32(y + d), vld1q_f32(x + d)));
    }
    for (; d < dim; ++d)
        y[d] = a * y[d] + x[d];
}

void
vmax(value_t *acc, const value_t *x, index_t dim)
{
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        vst1q_f32(acc + d, vmaxq_f32(vld1q_f32(acc + d),
                                     vld1q_f32(x + d)));
    for (; d < dim; ++d)
        acc[d] = acc[d] < x[d] ? x[d] : acc[d];
}

value_t
dot(const value_t *x, const value_t *y, index_t dim)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    index_t d = 0;
    for (; d + 4 <= dim; d += 4)
        acc = fmadd(vld1q_f32(x + d), vld1q_f32(y + d), acc);
    value_t sum = vaddvq_f32(acc);
    for (; d < dim; ++d)
        sum += x[d] * y[d];
    return sum;
}

value_t
gather_dot(const value_t *vals, const index_t *cols, index_t begin,
           index_t end, const value_t *x)
{
    // NEON has no gather; the scalar loop is the honest form.
    value_t sum = 0.0f;
    for (index_t k = begin; k < end; ++k)
        sum += vals[k] * x[cols[k]];
    return sum;
}

void
commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    add(dst, acc, dim);
}

} // namespace simd

// The mixed-precision fields fall back to the scalar reference on
// NEON: 4-lane widening loops don't beat the scalar fma chain, and
// the bandwidth saving comes from the narrow buffers either way.
constexpr RowKernels kSimdGeneric = {
    simd::zero,         simd::fill,
    simd::copy,         simd::add,
    simd::axpy,         simd::scale,
    simd::scale_add,    simd::vmax,
    simd::dot,          simd::gather_dot,
    simd::commit_plain, commit_atomic_impl,
    commit_max_atomic_impl, axpy_atomic_impl,
    scalar::axpy_bf16,    scalar::dot_bf16,
    scalar::gather_dot_bf16,
    scalar::encode_bf16,  scalar::decode_bf16,
    scalar::axpy_int8,    scalar::dot_int8,
    scalar::gather_dot_int8,
    scalar::encode_int8,  scalar::decode_int8,
    MicrokernelPath::kSimd,
    /*fixed_dim=*/0,
    "simd",
};
#endif // MPS_MICROKERNEL_SIMD

} // namespace

const char *
microkernel_path_name(MicrokernelPath path)
{
    return path == MicrokernelPath::kSimd ? "simd" : "scalar";
}

MicrokernelPath
microkernel_default_path()
{
    static const MicrokernelPath resolved = [] {
        MicrokernelPath p = microkernel_simd_compiled()
                                ? MicrokernelPath::kSimd
                                : MicrokernelPath::kScalar;
        if (const char *env = std::getenv("MPS_MICROKERNEL")) {
            const std::string v(env);
            if (v == "scalar") {
                p = MicrokernelPath::kScalar;
            } else if (v == "simd") {
                if (microkernel_simd_compiled()) {
                    p = MicrokernelPath::kSimd;
                } else {
                    warn("MPS_MICROKERNEL=simd but no SIMD path was "
                         "compiled in; using scalar");
                    p = MicrokernelPath::kScalar;
                }
            } else if (!v.empty()) {
                warn("unknown MPS_MICROKERNEL value '" + v +
                     "' (scalar|simd); using default");
            }
        }
        MetricsRegistry &metrics = MetricsRegistry::global();
        if (metrics.enabled()) {
            const bool simd_on = p == MicrokernelPath::kSimd;
            metrics.gauge_set("microkernel.simd", simd_on ? 1.0 : 0.0);
            metrics.gauge_set(
                "microkernel.vector_width",
                simd_on ? static_cast<double>(microkernel_vector_width())
                        : 1.0);
        }
        return p;
    }();
    return resolved;
}

const RowKernels &
select_row_kernels(index_t dim, MicrokernelPath path)
{
#if MPS_MICROKERNEL_SIMD
    if (path == MicrokernelPath::kSimd) {
#if MPS_MICROKERNEL_SIMD == 1
        switch (dim) {
          case 16:
            return kSimd16;
          case 32:
            return kSimd32;
          case 64:
            return kSimd64;
          default:
            return kSimdGeneric;
        }
#else
        (void)dim;
        return kSimdGeneric;
#endif
    }
#else
    (void)path;
#endif
    (void)dim;
    return kScalarTable;
}

const RowKernels &
select_row_kernels(index_t dim)
{
    return select_row_kernels(dim, microkernel_default_path());
}

void
row_zero(value_t *row, index_t dim)
{
    select_row_kernels(dim).zero(row, dim);
}

void
row_fill(value_t *row, value_t v, index_t dim)
{
    select_row_kernels(dim).fill(row, v, dim);
}

void
row_copy(value_t *dst, const value_t *src, index_t dim)
{
    select_row_kernels(dim).copy(dst, src, dim);
}

void
row_add(value_t *acc, const value_t *x, index_t dim)
{
    select_row_kernels(dim).add(acc, x, dim);
}

void
row_axpy(value_t *acc, value_t a, const value_t *x, index_t dim)
{
    select_row_kernels(dim).axpy(acc, a, x, dim);
}

void
row_scale(value_t *row, value_t a, index_t dim)
{
    select_row_kernels(dim).scale(row, a, dim);
}

void
row_scale_add(value_t *y, value_t a, const value_t *x, index_t dim)
{
    select_row_kernels(dim).scale_add(y, a, x, dim);
}

void
row_max(value_t *acc, const value_t *x, index_t dim)
{
    select_row_kernels(dim).vmax(acc, x, dim);
}

value_t
row_dot(const value_t *x, const value_t *y, index_t dim)
{
    return select_row_kernels(dim).dot(x, y, dim);
}

value_t
row_gather_dot(const value_t *vals, const index_t *cols, index_t begin,
               index_t end, const value_t *x)
{
    return select_row_kernels(end - begin).gather_dot(vals, cols, begin,
                                                      end, x);
}

void
row_commit_plain(value_t *dst, const value_t *acc, index_t dim)
{
    select_row_kernels(dim).commit_plain(dst, acc, dim);
}

void
row_commit_atomic(value_t *dst, const value_t *acc, index_t dim)
{
    select_row_kernels(dim).commit_atomic(dst, acc, dim);
}

value_t *
microkernel_scratch(index_t dim)
{
    thread_local AlignedVector buf;
    if (static_cast<index_t>(buf.size()) < dim)
        buf.resize(static_cast<size_t>(padded_row_length(dim)));
    return buf.data();
}

} // namespace mps
