#include "mps/core/serialize.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "mps/util/log.h"

namespace mps {

namespace {

constexpr char kCsrMagic[8] = {'M', 'P', 'S', 'C', 'S', 'R', '0', '1'};
constexpr char kSchedMagic[8] = {'M', 'P', 'S', 'S', 'C', 'H', '0', '1'};

template <typename T>
void
write_pod(std::ostream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
read_pod(std::istream &in, const char *what)
{
    T v{};
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!in)
        fatal(std::string("binary read failed at ") + what);
    return v;
}

template <typename T>
void
write_array(std::ostream &out, const std::vector<T> &xs)
{
    write_pod<int64_t>(out, static_cast<int64_t>(xs.size()));
    out.write(reinterpret_cast<const char *>(xs.data()),
              static_cast<std::streamsize>(xs.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
read_array(std::istream &in, const char *what, int64_t max_len)
{
    int64_t len = read_pod<int64_t>(in, what);
    if (len < 0 || len > max_len)
        fatal(std::string("implausible array length in ") + what);
    std::vector<T> xs(static_cast<size_t>(len));
    in.read(reinterpret_cast<char *>(xs.data()),
            static_cast<std::streamsize>(xs.size() * sizeof(T)));
    if (!in)
        fatal(std::string("binary read failed at ") + what);
    return xs;
}

void
expect_magic(std::istream &in, const char (&magic)[8], const char *what)
{
    char got[8];
    in.read(got, 8);
    if (!in || std::memcmp(got, magic, 8) != 0)
        fatal(std::string("bad magic for ") + what);
}

} // namespace

void
write_csr_binary(std::ostream &out, const CsrMatrix &m)
{
    out.write(kCsrMagic, 8);
    write_pod<int32_t>(out, m.rows());
    write_pod<int32_t>(out, m.cols());
    write_array(out, m.row_ptr());
    write_array(out, m.col_idx());
    write_array(out, m.values());
    MPS_CHECK(out.good(), "binary CSR write failed");
}

CsrMatrix
read_csr_binary(std::istream &in)
{
    expect_magic(in, kCsrMagic, "CSR container");
    int32_t rows = read_pod<int32_t>(in, "rows");
    int32_t cols = read_pod<int32_t>(in, "cols");
    if (rows < 0 || cols < 0)
        fatal("binary CSR: negative dimensions");
    const int64_t kMax = int64_t{1} << 33;
    auto row_ptr = read_array<index_t>(in, "row_ptr", kMax);
    auto col_idx = read_array<index_t>(in, "col_idx", kMax);
    auto values = read_array<value_t>(in, "values", kMax);
    // CsrMatrix's constructor validates all structural invariants.
    return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

void
write_csr_binary_file(const std::string &path, const CsrMatrix &m)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open for writing: " + path);
    write_csr_binary(out, m);
}

CsrMatrix
read_csr_binary_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open for reading: " + path);
    return read_csr_binary(in);
}

void
write_schedule_binary(std::ostream &out, const MergePathSchedule &sched)
{
    out.write(kSchedMagic, 8);
    write_pod<int64_t>(out, sched.items_per_thread());
    write_pod<int64_t>(out, static_cast<int64_t>(sched.num_threads()));
    for (const ThreadWork &w : sched.work()) {
        write_pod<index_t>(out, w.start.row);
        write_pod<index_t>(out, w.start.nz);
        write_pod<index_t>(out, w.end.row);
        write_pod<index_t>(out, w.end.nz);
    }
    MPS_CHECK(out.good(), "binary schedule write failed");
}

MergePathSchedule
read_schedule_binary(std::istream &in)
{
    expect_magic(in, kSchedMagic, "schedule container");
    int64_t items = read_pod<int64_t>(in, "items_per_thread");
    int64_t threads = read_pod<int64_t>(in, "num_threads");
    if (items < 1 || threads < 1 || threads > (int64_t{1} << 31))
        fatal("binary schedule: implausible header");
    std::vector<ThreadWork> work(static_cast<size_t>(threads));
    for (auto &w : work) {
        w.start.row = read_pod<index_t>(in, "start.row");
        w.start.nz = read_pod<index_t>(in, "start.nz");
        w.end.row = read_pod<index_t>(in, "end.row");
        w.end.nz = read_pod<index_t>(in, "end.nz");
    }
    return MergePathSchedule::from_parts(std::move(work), items);
}

} // namespace mps
