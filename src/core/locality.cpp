#include "mps/core/locality.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "mps/util/log.h"
#include "mps/util/metrics.h"

namespace mps {

namespace {

constexpr int64_t kDefaultL2Bytes = 1 << 20; // 1 MiB

/**
 * Largest cache the auto-tuner trusts to be meaningfully faster than
 * DRAM for single-core random gathers. Cloud parts advertise enormous
 * shared L3s (this was tuned against a vCPU reporting 260 MiB) whose
 * per-core random-access latency is DRAM-like — panels kept "resident"
 * there measure slower than simply prefetching past the misses. Real
 * per-socket L3s top out well under this bound.
 */
constexpr int64_t kMaxResidencyBytes = 64 << 20;

int64_t
sysfs_cache_bytes(const char *path)
{
    // sysfs "512K" / "1024K" / "2M" style strings.
    std::ifstream f(path);
    if (!f)
        return 0;
    int64_t value = 0;
    char unit = '\0';
    f >> value >> unit;
    if (value <= 0)
        return 0;
    if (unit == 'K' || unit == 'k')
        return value << 10;
    if (unit == 'M' || unit == 'm')
        return value << 20;
    return value;
}

int64_t
probe_l2_bytes()
{
#if defined(_SC_LEVEL2_CACHE_SIZE)
    long sz = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (sz > 0)
        return static_cast<int64_t>(sz);
#endif
    int64_t sysfs = sysfs_cache_bytes(
        "/sys/devices/system/cpu/cpu0/cache/index2/size");
    return sysfs > 0 ? sysfs : kDefaultL2Bytes;
}

int64_t
probe_llc_bytes()
{
    int64_t l3 = 0;
#if defined(_SC_LEVEL3_CACHE_SIZE)
    long sz = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (sz > 0)
        l3 = static_cast<int64_t>(sz);
#endif
    if (l3 <= 0)
        l3 = sysfs_cache_bytes(
            "/sys/devices/system/cpu/cpu0/cache/index3/size");
    return std::max(l3, detected_l2_bytes());
}

LocalityEnv
parse_locality_env()
{
    LocalityEnv env;
    if (const char *v = std::getenv("MPS_TILE_D")) {
        std::string s(v);
        if (s == "inf" || s == "off" || s == "none") {
            env.tile_policy = TilePolicy::kDisabled;
        } else if (s == "auto" || s.empty()) {
            env.tile_policy = TilePolicy::kAuto;
        } else {
            char *end = nullptr;
            long width = std::strtol(s.c_str(), &end, 10);
            if (end != nullptr && *end == '\0' && width >= 0) {
                if (width == 0) {
                    env.tile_policy = TilePolicy::kDisabled;
                } else {
                    env.tile_policy = TilePolicy::kExplicit;
                    env.tile_d = static_cast<index_t>(width);
                }
            } else {
                warn("unrecognized MPS_TILE_D value '" + s +
                     "' (want an integer, 'inf' or 'auto'); using auto");
            }
        }
    }
    if (const char *v = std::getenv("MPS_PREFETCH")) {
        std::string s(v);
        char *end = nullptr;
        long dist = std::strtol(s.c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && dist >= 0) {
            env.prefetch_auto = false;
            env.prefetch = static_cast<index_t>(dist);
        } else {
            warn("unrecognized MPS_PREFETCH value '" + s +
                 "' (want a non-negative integer); using auto");
        }
    }
    return env;
}

} // namespace

int64_t
detected_l2_bytes()
{
    static const int64_t bytes = probe_l2_bytes();
    return bytes;
}

int64_t
detected_llc_bytes()
{
    static const int64_t bytes = probe_llc_bytes();
    return bytes;
}

const LocalityEnv &
locality_env()
{
    static const LocalityEnv env = parse_locality_env();
    return env;
}

index_t
auto_tile_d(index_t n_cols, index_t dim, index_t elem_bytes)
{
    const int64_t llc = detected_llc_bytes();
    // Whole dense operand resident in the outermost cache -> tiling
    // buys nothing: the hierarchy already captures every re-gather and
    // prefetch hides the remaining latency. The operand rows are
    // cache-line padded, so budget with the padded stride. elem_bytes
    // is the STORED element width — quantized operands hold more
    // columns per byte and tile proportionally wider.
    const int64_t padded_dim = (dim + 15) / 16 * 16;
    const int64_t operand_bytes = static_cast<int64_t>(n_cols) *
                                  padded_dim *
                                  static_cast<int64_t>(elem_bytes);
    if (operand_bytes <= llc)
        return dim;
    // Full-residency regime: the widest panel such that a slice of
    // EVERY operand row fits in half a trustworthy cache — gathers
    // then go to DRAM only on a row's first touch per sweep, and every
    // reuse hits cache. This is the only regime where tiling measures
    // faster than the untiled traversal: a panel that merely *windows*
    // the operand (partial residency) re-pays the full sweep overhead
    // without cutting DRAM traffic, and loses to plain prefetch.
    const int64_t budget = std::min(llc, kMaxResidencyBytes) / 2;
    int64_t width = budget / (static_cast<int64_t>(n_cols) *
                              static_cast<int64_t>(elem_bytes));
    width = width / 16 * 16;
    if (width < 32)
        return dim; // streaming regime: prefetch, not panels
    width = std::min<int64_t>(width, 256);
    if (width >= dim)
        return dim;
    return static_cast<index_t>(width);
}

index_t
auto_prefetch_distance(index_t dim, index_t elem_bytes)
{
    if (dim <= 0)
        return 0;
    // Wider rows take longer to consume, so the lookahead shrinks:
    // ~one 4 KiB page of gathered BYTES ahead of the read cursor
    // (quantized rows pack more elements per page, so the distance
    // grows). The cap of 8 measured best for narrow rows — past that
    // the prefetched lines start being evicted before use.
    return std::clamp<index_t>(
        4096 / (dim * std::max<index_t>(elem_bytes, 1)), 2, 8);
}

index_t
auto_fused_tile_d(index_t n_rows, index_t dim, index_t elem_bytes)
{
    if (dim <= 32)
        return dim;
    const int64_t llc = detected_llc_bytes();
    const int64_t padded_dim = (dim + 15) / 16 * 16;
    const int64_t operand_bytes = static_cast<int64_t>(n_rows) *
                                  padded_dim *
                                  static_cast<int64_t>(elem_bytes);
    // This is the STREAMING panel width: both the source buffer the
    // GEMM fills and the output panel the consumer reads must stay
    // hot, so budget half a trustworthy cache and floor at 32 instead
    // of giving up — narrow dense panels keep the stores and gathers
    // on contiguous 128-byte rows, and the schedule reuse amortizes
    // the extra sweeps. run() into a full-width output re-derives its
    // own width (FusedLayerPlan widens when the whole temporary is
    // LLC-resident, where extra sweeps only add traversal cost and
    // strided column stores).
    //
    // Flat-LLC regime: when the advertised LLC exceeds the residency
    // bound (virtualized parts whose "L3" gathers at DRAM latency),
    // no panel width can actually be held resident, so narrowing buys
    // nothing — it only multiplies the per-panel costs: extra merge
    // traversals and, in the pipelined chain, one full re-stream of
    // the downstream rank-update accumulator per panel. The width is
    // then chosen as wide as the advertised capacity allows, which
    // both bounds the panel buffers on enormous graphs and minimizes
    // the panel count everywhere else.
    const int64_t budget = llc > kMaxResidencyBytes
                               ? llc
                               : std::min(llc, kMaxResidencyBytes) / 2;
    if (operand_bytes <= budget)
        return dim;
    int64_t width = budget / (static_cast<int64_t>(n_rows) *
                              static_cast<int64_t>(elem_bytes));
    width = width / 16 * 16;
    width = std::clamp<int64_t>(width, 32, 256);
    if (width >= dim)
        return dim;
    return static_cast<index_t>(width);
}

SpmmLocality
default_fused_locality(index_t n_rows, index_t dim, index_t elem_bytes)
{
    const LocalityEnv &env = locality_env();
    SpmmLocality loc;
    switch (env.tile_policy) {
    case TilePolicy::kDisabled:
        loc.tile_d = 0;
        break;
    case TilePolicy::kExplicit:
        loc.tile_d = std::min(env.tile_d, dim);
        break;
    case TilePolicy::kAuto:
        loc.tile_d = auto_fused_tile_d(n_rows, dim, elem_bytes);
        loc.auto_width = true;
        break;
    }
    // The fused gather reads panel-width rows, so the lookahead is
    // derived from the effective panel width, not the full dimension.
    const index_t effective = loc.tiled(dim) ? loc.tile_d : dim;
    loc.prefetch = env.prefetch_auto
                       ? auto_prefetch_distance(effective, elem_bytes)
                       : env.prefetch;
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled())
        metrics.gauge_set("fusion.tile_d",
                          static_cast<double>(loc.tiled(dim) ? loc.tile_d
                                                             : dim));
    return loc;
}

SpmmLocality
default_spmm_locality(index_t n_cols, index_t dim, index_t elem_bytes)
{
    const LocalityEnv &env = locality_env();
    SpmmLocality loc;
    switch (env.tile_policy) {
    case TilePolicy::kDisabled:
        loc.tile_d = 0;
        break;
    case TilePolicy::kExplicit:
        loc.tile_d = std::min(env.tile_d, dim);
        break;
    case TilePolicy::kAuto:
        loc.tile_d = auto_tile_d(n_cols, dim, elem_bytes);
        break;
    }
    loc.prefetch = env.prefetch_auto
                       ? auto_prefetch_distance(dim, elem_bytes)
                       : env.prefetch;
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.gauge_set("locality.tile_d",
                          static_cast<double>(loc.tiled(dim) ? loc.tile_d
                                                             : dim));
        metrics.gauge_set("locality.prefetch_distance",
                          static_cast<double>(loc.prefetch));
        metrics.gauge_set("locality.l2_bytes",
                          static_cast<double>(detected_l2_bytes()));
        metrics.gauge_set("locality.llc_bytes",
                          static_cast<double>(detected_llc_bytes()));
    }
    return loc;
}

} // namespace mps
