#include "mps/core/fusion.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "mps/core/hybrid.h"
#include "mps/core/precision.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"
#include "mps/util/work_steal_pool.h"

namespace mps {

namespace {

bool
parse_fusion_env()
{
    const char *v = std::getenv("MPS_FUSE");
    if (v == nullptr)
        return true;
    std::string s(v);
    if (s == "0" || s == "off" || s == "false" || s == "no")
        return false;
    if (s == "1" || s == "on" || s == "true" || s == "yes" || s.empty())
        return true;
    warn("unrecognized MPS_FUSE value '" + s +
         "' (want 0/1/on/off); fusion stays on");
    return true;
}

} // namespace

bool
fusion_enabled()
{
    static const bool on = parse_fusion_env();
    return on;
}

void
FusedLayerPlan::derive_tiles()
{
    tile_ = loc_.tiled(dim_) ? loc_.tile_d : dim_;
    // run() materializes into a full-width C. When the auto tuner
    // picked the width and the whole n x dim operand is LLC-resident,
    // narrow panels cannot cut traffic there — each one only re-pays
    // the merge traversal and commits through strided column stores —
    // so run() widens to a single full-width panel. Streaming keeps
    // the narrow width: its panels are the residency the pipeline is
    // built on. Explicit widths are honored in both modes.
    run_tile_ = tile_;
    run_loc_ = loc_;
    const index_t eb = storage_elem_bytes(precision_);
    if (loc_.auto_width && tile_ < dim_) {
        const int64_t padded = (dim_ + 15) / 16 * 16;
        const int64_t operand_bytes = static_cast<int64_t>(a_->cols()) *
                                      padded * static_cast<int64_t>(eb);
        if (operand_bytes <= detected_llc_bytes()) {
            run_tile_ = dim_;
            run_loc_.tile_d = 0;
            run_loc_.prefetch = auto_prefetch_distance(dim_, eb);
        }
    }
}

FusedLayerPlan::FusedLayerPlan(const CsrMatrix &a, index_t dim,
                               std::shared_ptr<const MergePathSchedule> sched,
                               SpmmLocality loc)
    : a_(&a), dim_(dim), sched_(std::move(sched)), loc_(loc)
{
    MPS_CHECK(sched_ != nullptr, "fused plan needs a schedule");
    MPS_CHECK(dim_ > 0, "fused plan needs a positive dimension");
    derive_tiles();
    // Split rows receive atomic commits from every contributing
    // thread; the inline epilogue must skip them (the value is not
    // final at any single commit), so resolve the schedule once and
    // keep the sorted, deduplicated list for the post-barrier pass.
    // resolve() marks any partial-row share atomic, so this list is
    // exactly "rows the epilogue cannot fire on inline".
    for (index_t t = 0; t < sched_->num_threads(); ++t) {
        ResolvedWork w = sched_->resolve(t, a);
        if (w.has_head() && w.head_atomic)
            shared_rows_.push_back(w.head_row);
        if (w.has_tail() && w.tail_atomic)
            shared_rows_.push_back(w.tail_row);
    }
    std::sort(shared_rows_.begin(), shared_rows_.end());
    shared_rows_.erase(
        std::unique(shared_rows_.begin(), shared_rows_.end()),
        shared_rows_.end());
}

FusedLayerPlan::FusedLayerPlan(const CsrMatrix &a, index_t dim,
                               std::shared_ptr<const HybridSchedule> hybrid,
                               SpmmLocality loc)
    : a_(&a), dim_(dim), hybrid_(std::move(hybrid)), loc_(loc)
{
    MPS_CHECK(hybrid_ != nullptr, "fused plan needs a schedule");
    MPS_CHECK(dim_ > 0, "fused plan needs a positive dimension");
    derive_tiles();
    // Only tail rows can be split across executors; dense-band rows
    // are owned by exactly one dense chunk and epilogue inline. Map
    // the tail schedule's atomic rows back to base ids for the
    // post-barrier pass.
    if (hybrid_->has_tail()) {
        const CsrMatrix &tm =
            hybrid_->tail_is_base() ? a : hybrid_->tail();
        const MergePathSchedule &ts = hybrid_->tail_schedule();
        const auto to_base = [&](index_t trow) {
            return hybrid_->tail_is_base() ? trow
                                           : hybrid_->tail_rows()[trow];
        };
        for (index_t t = 0; t < ts.num_threads(); ++t) {
            ResolvedWork w = ts.resolve(t, tm);
            if (w.has_head() && w.head_atomic)
                shared_rows_.push_back(to_base(w.head_row));
            if (w.has_tail() && w.tail_atomic)
                shared_rows_.push_back(to_base(w.tail_row));
        }
        std::sort(shared_rows_.begin(), shared_rows_.end());
        shared_rows_.erase(
            std::unique(shared_rows_.begin(), shared_rows_.end()),
            shared_rows_.end());
    }
}

void
FusedLayerPlan::quantize_source(const PanelSource &src, index_t width,
                                WorkStealPool &pool)
{
    if (precision_ == StorageMode::kF32 || src.quantizable == nullptr)
        return;
    // Fresh (GEMM-filled) buffers are re-encoded every panel, but only
    // the panel's columns: int8 per-row scale/zero must not see stale
    // trailing columns from a wider earlier panel. Slice sources are
    // encoded once, full-width, then reused across panels and runs.
    if (src.fresh || src.quantizable->storage() != precision_)
        quantize_dense(*src.quantizable, precision_, &pool,
                       src.fresh ? width : index_t(-1));
}

void
FusedLayerPlan::sweep_panel(const PanelSource &src, DenseMatrix &c,
                            index_t c_col0, index_t width,
                            WorkStealPool &pool, const SpmmLocality &loc,
                            PanelEpilogue epi, const void *epi_ctx,
                            bool count_census)
{
    if (hybrid_ != nullptr) {
        hybrid_spmm_panel(*a_, *hybrid_, *src.b, src.col_begin, c,
                          c_col0, width, pool, loc, epi, epi_ctx,
                          count_census);
    } else {
        mergepath_spmm_panel(*a_, *src.b, src.col_begin, c, c_col0,
                             width, *sched_, pool, loc, epi, epi_ctx,
                             count_census);
    }
}

void
FusedLayerPlan::apply_shared_epilogue(DenseMatrix &c, index_t c_col0,
                                      index_t width, PanelEpilogue epi,
                                      const void *epi_ctx)
{
    if (epi == nullptr)
        return;
    const index_t *scatter = loc_.row_scatter;
    for (index_t row : shared_rows_) {
        const index_t out = scatter != nullptr ? scatter[row] : row;
        epi(c.row(out) + c_col0, row, c_col0, width, epi_ctx);
    }
}

void
FusedLayerPlan::run(const PanelSourceFn &source, DenseMatrix &c,
                    WorkStealPool &pool, PanelEpilogue epi,
                    const void *epi_ctx, const PanelPostSweepFn &post_sweep)
{
    MPS_CHECK(c.rows() == a_->rows() && c.cols() == dim_,
              "fused output must be ", a_->rows(), "x", dim_);
    ScopedSpan span("spmm.fused", "kernel");
    Timer wall;
    c.fill(0.0f);
    int64_t panels = 0;
    for (index_t col = 0; col < dim_; col += run_tile_) {
        const index_t width = std::min(run_tile_, dim_ - col);
        const PanelSource src = source(col, width);
        MPS_CHECK(src.b != nullptr, "panel source returned no operand");
        quantize_source(src, width, pool);
        sweep_panel(src, c, col, width, pool, run_loc_, epi, epi_ctx,
                    /*count_census=*/col == 0);
        apply_shared_epilogue(c, col, width, epi, epi_ctx);
        if (post_sweep)
            post_sweep(col, width, src);
        ++panels;
    }
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter_add("fusion.runs");
        metrics.counter_add("fusion.panels", panels);
        metrics.histogram_record("kernel.fused.exec_ms",
                                 wall.elapsed_ms());
    }
}

void
FusedLayerPlan::run_streaming(const PanelSourceFn &source,
                              const PanelConsumerFn &consume,
                              WorkStealPool &pool, PanelEpilogue epi,
                              const void *epi_ctx)
{
    ScopedSpan span("spmm.fused.stream", "kernel");
    Timer wall;
    if (out_panel_.rows() != a_->rows() || out_panel_.cols() != tile_)
        out_panel_ = DenseMatrix(a_->rows(), tile_);
    int64_t panels = 0;
    for (index_t col = 0; col < dim_; col += tile_) {
        const index_t width = std::min(tile_, dim_ - col);
        const PanelSource src = source(col, width);
        MPS_CHECK(src.b != nullptr, "panel source returned no operand");
        quantize_source(src, width, pool);
        out_panel_.fill(0.0f);
        sweep_panel(src, out_panel_, /*c_col0=*/0, width, pool, loc_,
                    epi, epi_ctx, /*count_census=*/col == 0);
        apply_shared_epilogue(out_panel_, /*c_col0=*/0, width, epi,
                              epi_ctx);
        consume(col, width, out_panel_);
        ++panels;
    }
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter_add("fusion.runs");
        metrics.counter_add("fusion.stream_runs");
        metrics.counter_add("fusion.panels", panels);
        metrics.histogram_record("kernel.fused.exec_ms",
                                 wall.elapsed_ms());
    }
}

} // namespace mps
