#include "mps/core/spmm.h"

#include <algorithm>
#include <vector>

#include "mps/core/locality.h"
#include "mps/core/microkernel.h"
#include "mps/sparse/delta_csr.h"
#include "mps/sparse/spgemm.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/work_steal_pool.h"
#include "mps/util/trace.h"

namespace mps {

namespace {

/**
 * One column panel of the gather/commit datapath: the traversal reads
 * B columns [b_col, b_col + dim) and writes C columns
 * [c_col, c_col + dim), with output rows indirected through @p scatter
 * (nullptr = identity; reorder-aware execution passes the inverse
 * permutation). The tiled kernels keep b_col == c_col; the fused
 * pipeline gathers from a freshly written panel buffer (b_col = 0)
 * while committing to the real output columns. @p prefetch > 0
 * prefetches the B row of the non-zero that many positions ahead of
 * the read cursor — the panel start, plus a second cache line for wide
 * panels; the hardware streamer follows on within the row. @p epi,
 * when non-null, runs on plain commits only (full row ownership, value
 * final).
 */
struct PanelContext
{
    index_t b_col = 0;
    index_t c_col = 0;
    index_t dim = 0; ///< panel width, b.cols() when untiled
    index_t prefetch = 0;
    const index_t *scatter = nullptr;
    PanelEpilogue epi = nullptr;
    const void *epi_ctx = nullptr;
    /**
     * B's storage mode: the gather loop reads the reduced-width shadow
     * rows when the operand is quantized and widens in registers. The
     * accumulator/commit side is fp32 in every mode.
     */
    StorageMode bmode = StorageMode::kF32;

    index_t out_row(index_t row) const {
        return scatter != nullptr ? scatter[row] : row;
    }
};

/** Accumulate rows [begin, end) of A's nnz into the local buffer. */
inline void
accumulate_range(const CsrMatrix &a, const DenseMatrix &b, index_t nz_begin,
                 index_t nz_end, value_t *acc, const PanelContext &panel,
                 const RowKernels &rk)
{
    const index_t *cols = a.col_idx().data();
    const value_t *vals = a.values().data();
    const index_t col0 = panel.b_col;
    const index_t dim = panel.dim;
    const index_t pf = panel.prefetch;
    // The lookahead crosses row boundaries: the merge traversal
    // consumes the nnz stream in global order, so the gather pf
    // positions ahead is a later row of the same thread (or, at a
    // share boundary, a neighbor's first rows — a harmless extra
    // line). Clamping to the current row instead would silence the
    // prefetcher on every short power-law row.
    const index_t pf_end = pf > 0 ? a.nnz() - pf : 0;
    rk.zero(acc, dim);
    switch (panel.bmode) {
    case StorageMode::kBf16:
        for (index_t k = nz_begin; k < nz_end; ++k) {
            if (pf > 0 && k < pf_end) {
                const bf16_t *next = b.row_bf16(cols[k + pf]) + col0;
                locality_prefetch(next);
                if (dim > 32)
                    locality_prefetch(next + 32);
            }
            rk.axpy_bf16(acc, vals[k], b.row_bf16(cols[k]) + col0, dim);
        }
        return;
    case StorageMode::kInt8:
        for (index_t k = nz_begin; k < nz_end; ++k) {
            if (pf > 0 && k < pf_end)
                locality_prefetch(b.row_int8(cols[k + pf]) + col0);
            const index_t src = cols[k];
            rk.axpy_int8(acc, vals[k], b.row_int8(src) + col0,
                         b.quant_scale(src), b.quant_zero(src), dim);
        }
        return;
    case StorageMode::kF32:
        break;
    }
    for (index_t k = nz_begin; k < nz_end; ++k) {
        if (pf > 0 && k < pf_end) {
            const value_t *next = b.row(cols[k + pf]) + col0;
            locality_prefetch(next);
            if (dim > 16)
                locality_prefetch(next + 16);
        }
        rk.axpy(acc, vals[k], b.row(cols[k]) + col0, dim);
    }
}

/** Commit the local buffer to output row @p row, atomically or not. */
inline void
commit(DenseMatrix &c, index_t row, const value_t *acc,
       const PanelContext &panel, bool atomic, const RowKernels &rk)
{
    value_t *crow = c.row(panel.out_row(row)) + panel.c_col;
    if (atomic) {
        rk.commit_atomic(crow, acc, panel.dim);
    } else {
        rk.commit_plain(crow, acc, panel.dim);
        // Plain commit == the thread owns the whole row (resolve marks
        // any partial-row share atomic), so the value is final and the
        // fused epilogue can fire right here, while the line is hot.
        if (panel.epi != nullptr)
            panel.epi(crow, row, panel.c_col, panel.dim, panel.epi_ctx);
    }
}

/**
 * Per-executor write census (the runtime counterpart of Figure 5's
 * atomic-vs-plain write distribution). Each executor of a parallel_for
 * owns one cacheline-aligned accumulator and bumps it with plain
 * stores; the sums reach the metrics registry in one flush per SpMM
 * instead of up to three contended counter_add calls per scheduled
 * task.
 */
struct alignas(64) CommitCensus
{
    int64_t atomics = 0;
    int64_t plains = 0;
    int64_t nnz = 0;
};

void
flush_census(MetricsRegistry &metrics, const CommitCensus *census,
             size_t count)
{
    CommitCensus total;
    for (size_t i = 0; i < count; ++i) {
        total.atomics += census[i].atomics;
        total.plains += census[i].plains;
        total.nnz += census[i].nnz;
    }
    if (total.atomics > 0)
        metrics.counter_add("spmm.mergepath.atomic_commits",
                            total.atomics);
    if (total.plains > 0)
        metrics.counter_add("spmm.mergepath.plain_commits", total.plains);
    if (total.nnz > 0)
        metrics.counter_add("spmm.mergepath.nnz_processed", total.nnz);
}

/**
 * Execute one thread's share of Algorithm 2. @p acc is a caller-owned
 * scratch buffer of at least dim elements (the paper's T[0,:]/T[1,:]
 * thread-local storage; one buffer suffices because the commits are
 * sequential within a thread). @p census is the executing worker's
 * write-census accumulator, or nullptr when metrics are disabled.
 */
void
run_thread_work(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
                const MergePathSchedule &sched, index_t t, value_t *acc,
                const PanelContext &panel, const RowKernels &rk,
                CommitCensus *census)
{
    ResolvedWork w = sched.resolve(t, a);

    if (w.has_head()) {
        accumulate_range(a, b, w.head_begin, w.head_end, acc, panel, rk);
        commit(c, w.head_row, acc, panel, w.head_atomic, rk);
    }
    for (index_t row = w.first_complete_row; row < w.last_complete_row;
         ++row) {
        accumulate_range(a, b, a.row_begin(row), a.row_end(row), acc,
                         panel, rk);
        commit(c, row, acc, panel, /*atomic=*/false, rk);
    }
    if (w.has_tail()) {
        accumulate_range(a, b, w.tail_begin, w.tail_end, acc, panel, rk);
        commit(c, w.tail_row, acc, panel, w.tail_atomic, rk);
    }

    if (census != nullptr) {
        if (w.has_head()) {
            (w.head_atomic ? census->atomics : census->plains) += 1;
            census->nnz += w.head_end - w.head_begin;
        }
        if (w.last_complete_row > w.first_complete_row) {
            census->plains += w.last_complete_row - w.first_complete_row;
            census->nnz += a.row_begin(w.last_complete_row) -
                           a.row_begin(w.first_complete_row);
        }
        if (w.has_tail()) {
            (w.tail_atomic ? census->atomics : census->plains) += 1;
            census->nnz += w.tail_end - w.tail_begin;
        }
    }
}

void
check_shapes(const CsrMatrix &a, const DenseMatrix &b, const DenseMatrix &c)
{
    MPS_CHECK(b.rows() == a.cols(), "B rows (", b.rows(),
              ") must equal A cols (", a.cols(), ")");
    MPS_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "C must be A.rows x B.cols");
}

} // namespace

void
mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                          DenseMatrix &c, const MergePathSchedule &sched,
                          const SpmmLocality &loc)
{
    check_shapes(a, b, c);
    c.fill(0.0f);
    const index_t dim = b.cols();
    const index_t tile = loc.tiled(dim) ? loc.tile_d : dim;
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool instrumented = metrics.enabled();
    CommitCensus census;
    int64_t sweeps = 0;
    for (index_t col = 0; col < dim; col += tile) {
        PanelContext panel{col, col, std::min(tile, dim - col),
                           loc.prefetch, loc.row_scatter};
        panel.bmode = b.storage();
        const RowKernels &rk = select_row_kernels(panel.dim);
        value_t *acc = microkernel_scratch(panel.dim);
        // The write census describes the schedule, not the sweep
        // count: count it on the first panel only.
        CommitCensus *cs =
            instrumented && col == 0 ? &census : nullptr;
        for (index_t t = 0; t < sched.num_threads(); ++t)
            run_thread_work(a, b, c, sched, t, acc, panel, rk, cs);
        ++sweeps;
    }
    if (instrumented) {
        flush_census(metrics, &census, 1);
        metrics.counter_add("locality.tile_sweeps", sweeps);
    }
}

void
mergepath_spmm_sequential(const CsrMatrix &a, const DenseMatrix &b,
                          DenseMatrix &c, const MergePathSchedule &sched)
{
    mergepath_spmm_sequential(a, b, c, sched, SpmmLocality{});
}

void
mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                        DenseMatrix &c, const MergePathSchedule &sched,
                        WorkStealPool &pool, const SpmmLocality &loc)
{
    check_shapes(a, b, c);
    ScopedSpan span("spmm.mergepath", "kernel");
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        // Derived load-imbalance gauge: the largest thread share over
        // the mean share. Merge-path guarantees this stays ~1.0; the
        // row-split baselines have no such bound.
        int64_t max_items = 0;
        for (const ThreadWork &w : sched.work()) {
            int64_t items =
                (w.end.row - w.start.row) + (w.end.nz - w.start.nz);
            max_items = std::max(max_items, items);
        }
        int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
        double mean = sched.num_threads() == 0
                          ? 0.0
                          : static_cast<double>(total) /
                                static_cast<double>(sched.num_threads());
        metrics.gauge_set("spmm.mergepath.load_imbalance",
                          mean == 0.0 ? 1.0
                                      : static_cast<double>(max_items) /
                                            mean);
        metrics.gauge_set("spmm.mergepath.threads",
                          static_cast<double>(sched.num_threads()));
        metrics.counter_add("spmm.mergepath.runs");
    }
    c.fill(0.0f);
    const index_t dim = b.cols();
    const index_t tile = loc.tiled(dim) ? loc.tile_d : dim;
    const bool instrumented = metrics.enabled();
    // One write-census accumulator per pool executor, merged into the
    // registry once per SpMM (first panel only — the census describes
    // the schedule's write structure, which every sweep repeats).
    // Entries are cacheline-aligned and each is written only by its
    // owning executor; the pool's completion acquire/release makes the
    // final read race-free.
    std::vector<CommitCensus> census;
    if (instrumented)
        census.resize(pool.max_concurrency());
    int64_t sweeps = 0;
    for (index_t col = 0; col < dim; col += tile) {
        PanelContext panel{col, col, std::min(tile, dim - col),
                           loc.prefetch, loc.row_scatter};
        panel.bmode = b.storage();
        const RowKernels &rk = select_row_kernels(panel.dim);
        const bool count = instrumented && col == 0;
        // Grain is left to the pool: it derives the chunk size from
        // the schedule's thread count and the pool width, so a tiny
        // schedule still fans out while a huge one is not over-chunked
        // (the old fixed grain=8 serialized any schedule of <= 8
        // threads).
        pool.parallel_for(
            static_cast<uint64_t>(sched.num_threads()), [&](uint64_t t) {
                // Per-worker aligned scratch, reused across tasks —
                // the accumulator never hits the allocator on the hot
                // path.
                value_t *acc = microkernel_scratch(panel.dim);
                CommitCensus *cs =
                    count ? &census[pool.current_slot()] : nullptr;
                run_thread_work(a, b, c, sched, static_cast<index_t>(t),
                                acc, panel, rk, cs);
            });
        ++sweeps;
    }
    if (instrumented) {
        flush_census(metrics, census.data(), census.size());
        metrics.counter_add("locality.tile_sweeps", sweeps);
    }
}

void
mergepath_spmm_parallel(const CsrMatrix &a, const DenseMatrix &b,
                        DenseMatrix &c, const MergePathSchedule &sched,
                        WorkStealPool &pool)
{
    mergepath_spmm_parallel(
        a, b, c, sched, pool,
        default_spmm_locality(b.rows(), b.cols(),
                              storage_elem_bytes(b.storage())));
}

void
mergepath_spmm(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c,
               WorkStealPool &pool)
{
    index_t threads = static_cast<index_t>(pool.size()) * 16;
    threads = std::max<index_t>(threads, 1);
    MergePathSchedule sched = MergePathSchedule::build(a, threads);
    mergepath_spmm_parallel(a, b, c, sched, pool);
}

namespace {

void
check_panel_shapes(const CsrMatrix &a, const DenseMatrix &b, index_t b_col0,
                   const DenseMatrix &c, index_t c_col0, index_t width)
{
    MPS_CHECK(b.rows() == a.cols(), "B rows (", b.rows(),
              ") must equal A cols (", a.cols(), ")");
    MPS_CHECK(c.rows() == a.rows(), "C rows (", c.rows(),
              ") must equal A rows (", a.rows(), ")");
    MPS_CHECK(width > 0 && b_col0 >= 0 && b_col0 + width <= b.cols(),
              "B panel [", b_col0, ", ", b_col0 + width,
              ") out of range for ", b.cols(), " cols");
    MPS_CHECK(c_col0 >= 0 && c_col0 + width <= c.cols(), "C panel [",
              c_col0, ", ", c_col0 + width, ") out of range for ",
              c.cols(), " cols");
}

} // namespace

void
mergepath_spmm_panel(const CsrMatrix &a, const DenseMatrix &b,
                     index_t b_col0, DenseMatrix &c, index_t c_col0,
                     index_t width, const MergePathSchedule &sched,
                     WorkStealPool &pool, const SpmmLocality &loc,
                     PanelEpilogue epi, const void *epi_ctx,
                     bool count_census)
{
    check_panel_shapes(a, b, b_col0, c, c_col0, width);
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool count = count_census && metrics.enabled();
    std::vector<CommitCensus> census;
    if (count)
        census.resize(pool.max_concurrency());
    PanelContext panel{b_col0,       c_col0, width, loc.prefetch,
                       loc.row_scatter, epi,  epi_ctx};
    panel.bmode = b.storage();
    const RowKernels &rk = select_row_kernels(width);
    pool.parallel_for(
        static_cast<uint64_t>(sched.num_threads()), [&](uint64_t t) {
            value_t *acc = microkernel_scratch(width);
            CommitCensus *cs =
                count ? &census[pool.current_slot()] : nullptr;
            run_thread_work(a, b, c, sched, static_cast<index_t>(t), acc,
                            panel, rk, cs);
        });
    if (count)
        flush_census(metrics, census.data(), census.size());
}

void
mergepath_spmm_panel(const CsrMatrix &a, const DenseMatrix &b,
                     index_t b_col0, DenseMatrix &c, index_t c_col0,
                     index_t width, const MergePathSchedule &sched,
                     const SpmmLocality &loc, PanelEpilogue epi,
                     const void *epi_ctx, bool count_census)
{
    check_panel_shapes(a, b, b_col0, c, c_col0, width);
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool count = count_census && metrics.enabled();
    CommitCensus census;
    PanelContext panel{b_col0,       c_col0, width, loc.prefetch,
                       loc.row_scatter, epi,  epi_ctx};
    panel.bmode = b.storage();
    const RowKernels &rk = select_row_kernels(width);
    value_t *acc = microkernel_scratch(width);
    for (index_t t = 0; t < sched.num_threads(); ++t)
        run_thread_work(a, b, c, sched, t, acc, panel, rk,
                        count ? &census : nullptr);
    if (count)
        flush_census(metrics, &census, 1);
}

void
sparse_dense_matmul(const CsrMatrix &x, const DenseMatrix &w,
                    DenseMatrix &out, WorkStealPool &pool)
{
    MPS_CHECK(x.cols() == w.rows(), "inner dimensions differ: ", x.cols(),
              " vs ", w.rows());
    MPS_CHECK(out.rows() == x.rows() && out.cols() == w.cols(),
              "output must be ", x.rows(), "x", w.cols());
    const index_t dim = w.cols();
    const RowKernels &rk = select_row_kernels(dim);
    // Row blocks are sized by the pool from (rows, width) — a
    // ~100-row graph no longer collapses into one serial 128-row
    // chunk, and a million-row one no longer pays thousands of chunk
    // claims.
    pool.parallel_for_ranges(
        static_cast<uint64_t>(x.rows()), [&](uint64_t begin, uint64_t end) {
            for (index_t r = static_cast<index_t>(begin);
                 r < static_cast<index_t>(end); ++r) {
                value_t *orow = out.row(r);
                rk.zero(orow, dim);
                for (index_t k = x.row_begin(r); k < x.row_end(r); ++k)
                    rk.axpy(orow, x.values()[k], w.row(x.col_idx()[k]),
                            dim);
            }
        });
}

namespace {

/** Apply dirty row @p i's corrections onto C (full width, plain add). */
inline void
correct_dirty_row(const DeltaCsr &dcsr, index_t i, const DenseMatrix &b,
                  DenseMatrix &c, const index_t *scatter, value_t *acc,
                  const RowKernels &rk)
{
    const index_t dim = b.cols();
    rk.zero(acc, dim);
    dcsr.for_each_correction(
        i, [&](index_t col, value_t corr, value_t, bool) {
            rk.axpy(acc, corr, b.row(col), dim);
        });
    const index_t row = dcsr.dirty_row(i);
    value_t *crow = c.row(scatter != nullptr ? scatter[row] : row);
    rk.add(crow, acc, dim);
}

} // namespace

void
delta_correction_pass(const DeltaCsr &dcsr, const DenseMatrix &b,
                      DenseMatrix &c, WorkStealPool &pool,
                      const SpmmLocality &loc)
{
    const index_t dirty = dcsr.num_dirty_rows();
    if (dirty == 0)
        return;
    check_shapes(dcsr.base(), b, c);
    const RowKernels &rk = select_row_kernels(b.cols());
    const index_t *scatter = loc.row_scatter;
    pool.parallel_for_ranges(
        static_cast<uint64_t>(dirty), [&](uint64_t begin, uint64_t end) {
            value_t *acc = microkernel_scratch(b.cols());
            for (index_t i = static_cast<index_t>(begin);
                 i < static_cast<index_t>(end); ++i)
                correct_dirty_row(dcsr, i, b, c, scatter, acc, rk);
        });
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter_add("spmm.delta.corrected_rows", dirty);
        metrics.counter_add("spmm.delta.correction_nnz",
                            dcsr.delta_edges());
    }
}

void
delta_correction_pass(const DeltaCsr &dcsr, const DenseMatrix &b,
                      DenseMatrix &c)
{
    const index_t dirty = dcsr.num_dirty_rows();
    if (dirty == 0)
        return;
    check_shapes(dcsr.base(), b, c);
    const RowKernels &rk = select_row_kernels(b.cols());
    value_t *acc = microkernel_scratch(b.cols());
    for (index_t i = 0; i < dirty; ++i)
        correct_dirty_row(dcsr, i, b, c, nullptr, acc, rk);
}

void
delta_correction_panel(const DeltaCsr &dcsr, const DenseMatrix &b,
                       index_t b_col0, DenseMatrix &c, index_t c_col0,
                       index_t width, WorkStealPool &pool,
                       const index_t *row_scatter)
{
    const index_t dirty = dcsr.num_dirty_rows();
    if (dirty == 0)
        return;
    check_panel_shapes(dcsr.base(), b, b_col0, c, c_col0, width);
    const RowKernels &rk = select_row_kernels(width);
    pool.parallel_for_ranges(
        static_cast<uint64_t>(dirty), [&](uint64_t begin, uint64_t end) {
            value_t *acc = microkernel_scratch(width);
            for (index_t i = static_cast<index_t>(begin);
                 i < static_cast<index_t>(end); ++i) {
                rk.zero(acc, width);
                dcsr.for_each_correction(
                    i, [&](index_t col, value_t corr, value_t, bool) {
                        rk.axpy(acc, corr, b.row(col) + b_col0, width);
                    });
                const index_t row = dcsr.dirty_row(i);
                value_t *crow = c.row(row_scatter != nullptr
                                          ? row_scatter[row]
                                          : row) +
                                c_col0;
                rk.add(crow, acc, width);
            }
        });
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled()) {
        metrics.counter_add("spmm.delta.corrected_rows", dirty);
        metrics.counter_add("spmm.delta.correction_nnz",
                            dcsr.delta_edges());
    }
}

void
dynamic_spmm_parallel(const DeltaCsr &dcsr, const DenseMatrix &b,
                      DenseMatrix &c, const MergePathSchedule &sched,
                      WorkStealPool &pool, const SpmmLocality &loc)
{
    mergepath_spmm_parallel(dcsr.base(), b, c, sched, pool, loc);
    delta_correction_pass(dcsr, b, c, pool, loc);
}

void
dynamic_spmm_parallel(const DeltaCsr &dcsr, const DenseMatrix &b,
                      DenseMatrix &c, const MergePathSchedule &sched,
                      WorkStealPool &pool)
{
    dynamic_spmm_parallel(
        dcsr, b, c, sched, pool,
        default_spmm_locality(b.rows(), b.cols(),
                              storage_elem_bytes(b.storage())));
}

void
dynamic_spmm_sequential(const DeltaCsr &dcsr, const DenseMatrix &b,
                        DenseMatrix &c, const MergePathSchedule &sched)
{
    mergepath_spmm_sequential(dcsr.base(), b, c, sched);
    delta_correction_pass(dcsr, b, c);
}

void
reference_spmm(const CsrMatrix &a, const DenseMatrix &b, DenseMatrix &c)
{
    check_shapes(a, b, c);
    // The gold kernel pins the scalar path so tests comparing a SIMD
    // kernel against it exercise two genuinely different datapaths.
    const RowKernels &rk =
        select_row_kernels(b.cols(), MicrokernelPath::kScalar);
    const index_t dim = b.cols();
    for (index_t r = 0; r < a.rows(); ++r) {
        value_t *crow = c.row(r);
        rk.zero(crow, dim);
        for (index_t k = a.row_begin(r); k < a.row_end(r); ++k)
            rk.axpy(crow, a.values()[k], b.row(a.col_idx()[k]), dim);
    }
}

} // namespace mps
