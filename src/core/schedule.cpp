#include "mps/core/schedule.h"

#include <algorithm>

#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

namespace mps {

MergePathSchedule
MergePathSchedule::build(const CsrMatrix &a, index_t num_threads)
{
    MPS_CHECK(num_threads >= 1, "need at least one thread");
    // Schedule construction is the cost Figure 8 charges to online
    // execution; surface it as a timing distribution + span.
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool instrumented = metrics.enabled();
    ScopedSpan span("schedule.build", "schedule");
    Timer timer;
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();

    MergePathSchedule sched;
    sched.items_per_thread_ =
        (total + num_threads - 1) / std::max<int64_t>(num_threads, 1);
    if (sched.items_per_thread_ == 0)
        sched.items_per_thread_ = 1;

    // One search per thread boundary; adjacent threads share coordinates
    // so the schedule is a partition by construction.
    const index_t *row_ends =
        a.rows() > 0 ? a.row_ptr().data() + 1 : nullptr;
    std::vector<MergeCoordinate> bounds(
        static_cast<size_t>(num_threads) + 1);
    for (index_t t = 0; t <= num_threads; ++t) {
        int64_t diagonal =
            std::min<int64_t>(static_cast<int64_t>(t) *
                                  sched.items_per_thread_,
                              total);
        bounds[static_cast<size_t>(t)] =
            merge_path_search(diagonal, row_ends, a.rows(), a.nnz());
    }
    sched.work_.resize(static_cast<size_t>(num_threads));
    for (index_t t = 0; t < num_threads; ++t) {
        sched.work_[static_cast<size_t>(t)] = {
            bounds[static_cast<size_t>(t)],
            bounds[static_cast<size_t>(t) + 1]};
    }
    if (instrumented) {
        metrics.counter_add("schedule.builds");
        metrics.timer_record_ms("schedule.build_ms", timer.elapsed_ms());
    }
    return sched;
}

MergePathSchedule
MergePathSchedule::build_with_cost(const CsrMatrix &a, index_t cost,
                                   index_t min_threads)
{
    MPS_CHECK(cost >= 1, "merge-path cost must be >= 1");
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    int64_t threads = (total + cost - 1) / cost;
    if (threads < 1)
        threads = 1;
    // Small-graph rule (Sec. III-C): guarantee a minimum amount of
    // parallelism by lowering the effective cost.
    if (min_threads > 0 && threads < min_threads)
        threads = min_threads;
    return build(a, static_cast<index_t>(threads));
}

MergePathSchedule
MergePathSchedule::from_parts(std::vector<ThreadWork> work,
                              int64_t items_per_thread)
{
    MPS_CHECK(!work.empty(), "schedule needs at least one thread");
    MPS_CHECK(items_per_thread >= 1, "items_per_thread must be >= 1");
    MergePathSchedule sched;
    sched.work_ = std::move(work);
    sched.items_per_thread_ = items_per_thread;
    return sched;
}

ResolvedWork
MergePathSchedule::resolve(index_t t, const CsrMatrix &a) const
{
    const ThreadWork &w = work_[static_cast<size_t>(t)];
    const auto &rp = a.row_ptr();
    ResolvedWork r;
    if (w.empty())
        return r;

    const index_t sx = w.start.row, sy = w.start.nz;
    const index_t ex = w.end.row, ey = w.end.nz;

    if (sx == ex) {
        // Only one row touched and no row boundary consumed: the whole
        // contribution is nnz [sy, ey) of row sx. It needs an atomic
        // commit unless this thread owns the entire row.
        r.head_row = sx;
        r.head_begin = sy;
        r.head_end = ey;
        r.head_atomic = sy > rp[sx] || ey < rp[static_cast<size_t>(sx) + 1];
        return r;
    }

    // Head: the remainder of row sx (partial when the thread starts
    // mid-row; the preceding thread supplied the missing prefix).
    if (sy > rp[sx]) {
        if (sy < rp[static_cast<size_t>(sx) + 1]) {
            r.head_row = sx;
            r.head_begin = sy;
            r.head_end = rp[static_cast<size_t>(sx) + 1];
            r.head_atomic = true;
        }
        r.first_complete_row = sx + 1;
    } else {
        r.first_complete_row = sx;
    }
    r.last_complete_row = ex;

    // Tail: the prefix [rp[ex], ey) of row ex. If ey lands exactly on the
    // row's end, this thread computed the whole row alone (the next
    // thread's share starts with the row-boundary item), so the row is
    // promoted to a plain complete row.
    if (ex < a.rows() && ey > rp[ex]) {
        if (ey < rp[static_cast<size_t>(ex) + 1]) {
            r.tail_row = ex;
            r.tail_begin = rp[ex];
            r.tail_end = ey;
            r.tail_atomic = true;
        } else {
            r.last_complete_row = ex + 1;
        }
    }
    return r;
}

ScheduleCensusPart
ScheduleCensusPart::merged(const ScheduleCensusPart &right) const
{
    ScheduleCensusPart m;
    m.counts.empty_threads = counts.empty_threads +
                             right.counts.empty_threads;
    m.counts.atomic_commits = counts.atomic_commits +
                              right.counts.atomic_commits;
    m.counts.plain_row_writes = counts.plain_row_writes +
                                right.counts.plain_row_writes;
    m.counts.atomic_nnz = counts.atomic_nnz + right.counts.atomic_nnz;
    m.counts.plain_nnz = counts.plain_nnz + right.counts.plain_nnz;
    m.counts.max_nnz_per_thread = std::max(
        counts.max_nnz_per_thread, right.counts.max_nnz_per_thread);
    m.counts.max_items_per_thread = std::max(
        counts.max_items_per_thread, right.counts.max_items_per_thread);
    // Atomic rows are non-decreasing in thread order, so the only row
    // both sides can count is the seam row shared by the last thread of
    // the left range and the first of the right.
    const int64_t seam = (last_atomic_row >= 0 &&
                          last_atomic_row == right.first_atomic_row)
                             ? 1
                             : 0;
    m.counts.split_rows =
        counts.split_rows + right.counts.split_rows - seam;
    m.first_atomic_row =
        first_atomic_row >= 0 ? first_atomic_row : right.first_atomic_row;
    m.last_atomic_row =
        right.last_atomic_row >= 0 ? right.last_atomic_row
                                   : last_atomic_row;
    return m;
}

ScheduleCensusPart
MergePathSchedule::census_part(const CsrMatrix &a, index_t t_begin,
                               index_t t_end) const
{
    MPS_CHECK(t_begin >= 0 && t_end <= num_threads() && t_begin <= t_end,
              "bad census thread range [", t_begin, ", ", t_end, ")");
    ScheduleCensusPart part;
    ScheduleCensus &c = part.counts;
    const auto &rp = a.row_ptr();

    const auto count_atomic_row = [&part, &c](index_t row) {
        if (part.first_atomic_row < 0)
            part.first_atomic_row = row;
        // Non-decreasing in thread order: a new distinct row whenever
        // it differs from the previous one.
        if (row != part.last_atomic_row)
            ++c.split_rows;
        part.last_atomic_row = row;
    };

    for (index_t t = t_begin; t < t_end; ++t) {
        const ThreadWork &w = work_[static_cast<size_t>(t)];
        if (w.empty()) {
            ++c.empty_threads;
            continue;
        }
        int64_t nnz_t = w.end.nz - w.start.nz;
        int64_t items_t = (w.end.row - w.start.row) + nnz_t;
        c.max_nnz_per_thread = std::max(c.max_nnz_per_thread, nnz_t);
        c.max_items_per_thread = std::max(c.max_items_per_thread, items_t);

        ResolvedWork r = resolve(t, a);
        if (r.has_head()) {
            int64_t len = r.head_end - r.head_begin;
            if (r.head_atomic) {
                ++c.atomic_commits;
                c.atomic_nnz += len;
                count_atomic_row(r.head_row);
            } else {
                ++c.plain_row_writes;
                c.plain_nnz += len;
            }
        }
        if (r.last_complete_row > r.first_complete_row) {
            c.plain_row_writes +=
                r.last_complete_row - r.first_complete_row;
            c.plain_nnz += rp[r.last_complete_row] -
                           rp[r.first_complete_row];
        }
        if (r.has_tail()) {
            ++c.atomic_commits;
            c.atomic_nnz += r.tail_end - r.tail_begin;
            count_atomic_row(r.tail_row);
        }
    }
    return part;
}

ScheduleCensus
MergePathSchedule::census(const CsrMatrix &a) const
{
    return census_part(a, 0, num_threads()).counts;
}

void
MergePathSchedule::validate(const CsrMatrix &a) const
{
    MPS_CHECK(!work_.empty(), "schedule has no threads");
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();

    MPS_CHECK(work_.front().start.row == 0 && work_.front().start.nz == 0,
              "schedule must start at the origin");
    MPS_CHECK(work_.back().end.row == a.rows() &&
                  work_.back().end.nz == a.nnz(),
              "schedule must end at (rows, nnz)");

    int64_t covered = 0;
    for (size_t t = 0; t < work_.size(); ++t) {
        const ThreadWork &w = work_[t];
        MPS_CHECK(w.end.row >= w.start.row && w.end.nz >= w.start.nz,
                  "thread ", t, " has a backwards range");
        int64_t items = (w.end.row - w.start.row) +
                        (w.end.nz - w.start.nz);
        MPS_CHECK(items <= items_per_thread_, "thread ", t,
                  " exceeds the merge-path cost: ", items, " > ",
                  items_per_thread_);
        if (t + 1 < work_.size()) {
            MPS_CHECK(w.end == work_[t + 1].start,
                      "thread ranges must be contiguous at thread ", t);
        }
        covered += items;
    }
    MPS_CHECK(covered == total, "schedule covers ", covered,
              " merge items, expected ", total);

    // Every nnz range must lie inside its row per the CSR row pointers.
    const auto &rp = a.row_ptr();
    for (size_t t = 0; t < work_.size(); ++t) {
        const ThreadWork &w = work_[t];
        if (w.empty())
            continue;
        MPS_CHECK(w.start.row <= a.rows() && w.end.row <= a.rows(),
                  "thread ", t, " row out of range");
        if (w.start.row < a.rows()) {
            MPS_CHECK(w.start.nz >= rp[w.start.row] &&
                          w.start.nz <=
                              rp[static_cast<size_t>(w.start.row) + 1],
                      "thread ", t, " start nz not within start row");
        }
        if (w.end.row < a.rows()) {
            MPS_CHECK(w.end.nz >= rp[w.end.row] &&
                          w.end.nz <=
                              rp[static_cast<size_t>(w.end.row) + 1],
                      "thread ", t, " end nz not within end row");
        }
    }
}

ScheduleRepair
repair_schedule(const MergePathSchedule &old_sched, const CsrMatrix &old_a,
                const CsrMatrix &new_a, index_t first_dirty_row)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool instrumented = metrics.enabled();
    Timer timer;

    const index_t num_threads = old_sched.num_threads();
    const int64_t total_new =
        static_cast<int64_t>(new_a.rows()) + new_a.nnz();
    MPS_CHECK(new_a.rows() == old_a.rows(),
              "repair requires an unchanged row count");
    MPS_CHECK(first_dirty_row >= 0 && first_dirty_row <= new_a.rows(),
              "first_dirty_row out of range: ", first_dirty_row);

    const auto full_rebuild = [&]() {
        ScheduleRepair r;
        r.schedule = MergePathSchedule::build(new_a, num_threads);
        r.dirty_begin = 0;
        r.dirty_end = num_threads;
        r.rebuilt = true;
        if (instrumented) {
            metrics.counter_add("schedule.repair_rebuilds");
            metrics.counter_add(
                "schedule.repair_ns",
                static_cast<int64_t>(timer.elapsed_ns()));
        }
        return r;
    };

    if (first_dirty_row >= new_a.rows() && new_a.nnz() == old_a.nnz()) {
        // Value-only delta: the schedule depends on structure alone.
        ScheduleRepair r;
        r.schedule = old_sched;
        r.dirty_begin = r.dirty_end = num_threads;
        if (instrumented)
            metrics.counter_add("schedule.repairs");
        return r;
    }
    if (first_dirty_row == 0 || num_threads <= 1)
        return full_rebuild();

    // Diagonals <= p cross the merge path inside the structurally
    // unchanged prefix (the search predicate is identical below row
    // first_dirty_row and false at it in both matrices), so every old
    // boundary at such a diagonal is still on the new path.
    const int64_t p =
        static_cast<int64_t>(first_dirty_row) +
        old_a.row_ptr()[first_dirty_row];

    const auto &old_work = old_sched.work();
    std::vector<MergeCoordinate> bounds(
        static_cast<size_t>(num_threads) + 1);
    bounds[0] = old_work[0].start;
    index_t kept = 0; // largest boundary index kept verbatim
    for (index_t t = 1; t < num_threads; ++t) {
        const MergeCoordinate &b = old_work[static_cast<size_t>(t)].start;
        if (static_cast<int64_t>(b.row) + b.nz > p)
            break;
        bounds[static_cast<size_t>(t)] = b;
        kept = t;
    }

    // Re-place the remaining boundaries evenly over the dirty suffix;
    // each search is windowed to rows >= the last kept boundary's row.
    const int64_t kept_diag =
        static_cast<int64_t>(bounds[static_cast<size_t>(kept)].row) +
        bounds[static_cast<size_t>(kept)].nz;
    const index_t remaining = num_threads - kept;
    int64_t suffix_cost =
        (total_new - kept_diag + remaining - 1) / remaining;
    if (suffix_cost < 1)
        suffix_cost = 1;
    const index_t *row_ends =
        new_a.rows() > 0 ? new_a.row_ptr().data() + 1 : nullptr;
    for (index_t j = 1; j < remaining; ++j) {
        const int64_t diagonal =
            std::min(kept_diag + j * suffix_cost, total_new);
        bounds[static_cast<size_t>(kept + j)] = merge_path_search_window(
            diagonal, row_ends, new_a.rows(), new_a.nnz(),
            bounds[static_cast<size_t>(kept)].row, new_a.rows());
    }
    bounds[static_cast<size_t>(num_threads)] = {new_a.rows(),
                                                new_a.nnz()};

    int64_t items_per_thread = 1;
    for (index_t t = 0; t < num_threads; ++t) {
        const int64_t d0 =
            static_cast<int64_t>(bounds[static_cast<size_t>(t)].row) +
            bounds[static_cast<size_t>(t)].nz;
        const int64_t d1 =
            static_cast<int64_t>(bounds[static_cast<size_t>(t) + 1].row) +
            bounds[static_cast<size_t>(t) + 1].nz;
        items_per_thread = std::max(items_per_thread, d1 - d0);
    }
    // Balance guard: the kept prefix pins old spacing, so a delta that
    // grows the suffix a lot can overload suffix threads. Rebuilding
    // restores even spacing.
    const int64_t balanced =
        (total_new + num_threads - 1) / num_threads;
    if (items_per_thread > 2 * balanced)
        return full_rebuild();

    std::vector<ThreadWork> work(static_cast<size_t>(num_threads));
    for (index_t t = 0; t < num_threads; ++t) {
        work[static_cast<size_t>(t)] = {
            bounds[static_cast<size_t>(t)],
            bounds[static_cast<size_t>(t) + 1]};
    }
    ScheduleRepair r;
    r.schedule =
        MergePathSchedule::from_parts(std::move(work), items_per_thread);
    r.dirty_begin = kept;
    r.dirty_end = num_threads;
    if (instrumented) {
        metrics.counter_add("schedule.repairs");
        metrics.counter_add("schedule.repair_ns",
                            static_cast<int64_t>(timer.elapsed_ns()));
    }
    return r;
}

} // namespace mps
