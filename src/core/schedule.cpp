#include "mps/core/schedule.h"

#include <algorithm>

#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

namespace mps {

MergePathSchedule
MergePathSchedule::build(const CsrMatrix &a, index_t num_threads)
{
    MPS_CHECK(num_threads >= 1, "need at least one thread");
    // Schedule construction is the cost Figure 8 charges to online
    // execution; surface it as a timing distribution + span.
    MetricsRegistry &metrics = MetricsRegistry::global();
    const bool instrumented = metrics.enabled();
    ScopedSpan span("schedule.build", "schedule");
    Timer timer;
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();

    MergePathSchedule sched;
    sched.items_per_thread_ =
        (total + num_threads - 1) / std::max<int64_t>(num_threads, 1);
    if (sched.items_per_thread_ == 0)
        sched.items_per_thread_ = 1;

    // One search per thread boundary; adjacent threads share coordinates
    // so the schedule is a partition by construction.
    const index_t *row_ends =
        a.rows() > 0 ? a.row_ptr().data() + 1 : nullptr;
    std::vector<MergeCoordinate> bounds(
        static_cast<size_t>(num_threads) + 1);
    for (index_t t = 0; t <= num_threads; ++t) {
        int64_t diagonal =
            std::min<int64_t>(static_cast<int64_t>(t) *
                                  sched.items_per_thread_,
                              total);
        bounds[static_cast<size_t>(t)] =
            merge_path_search(diagonal, row_ends, a.rows(), a.nnz());
    }
    sched.work_.resize(static_cast<size_t>(num_threads));
    for (index_t t = 0; t < num_threads; ++t) {
        sched.work_[static_cast<size_t>(t)] = {
            bounds[static_cast<size_t>(t)],
            bounds[static_cast<size_t>(t) + 1]};
    }
    if (instrumented) {
        metrics.counter_add("schedule.builds");
        metrics.timer_record_ms("schedule.build_ms", timer.elapsed_ms());
    }
    return sched;
}

MergePathSchedule
MergePathSchedule::build_with_cost(const CsrMatrix &a, index_t cost,
                                   index_t min_threads)
{
    MPS_CHECK(cost >= 1, "merge-path cost must be >= 1");
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();
    int64_t threads = (total + cost - 1) / cost;
    if (threads < 1)
        threads = 1;
    // Small-graph rule (Sec. III-C): guarantee a minimum amount of
    // parallelism by lowering the effective cost.
    if (min_threads > 0 && threads < min_threads)
        threads = min_threads;
    return build(a, static_cast<index_t>(threads));
}

MergePathSchedule
MergePathSchedule::from_parts(std::vector<ThreadWork> work,
                              int64_t items_per_thread)
{
    MPS_CHECK(!work.empty(), "schedule needs at least one thread");
    MPS_CHECK(items_per_thread >= 1, "items_per_thread must be >= 1");
    MergePathSchedule sched;
    sched.work_ = std::move(work);
    sched.items_per_thread_ = items_per_thread;
    return sched;
}

ResolvedWork
MergePathSchedule::resolve(index_t t, const CsrMatrix &a) const
{
    const ThreadWork &w = work_[static_cast<size_t>(t)];
    const auto &rp = a.row_ptr();
    ResolvedWork r;
    if (w.empty())
        return r;

    const index_t sx = w.start.row, sy = w.start.nz;
    const index_t ex = w.end.row, ey = w.end.nz;

    if (sx == ex) {
        // Only one row touched and no row boundary consumed: the whole
        // contribution is nnz [sy, ey) of row sx. It needs an atomic
        // commit unless this thread owns the entire row.
        r.head_row = sx;
        r.head_begin = sy;
        r.head_end = ey;
        r.head_atomic = sy > rp[sx] || ey < rp[static_cast<size_t>(sx) + 1];
        return r;
    }

    // Head: the remainder of row sx (partial when the thread starts
    // mid-row; the preceding thread supplied the missing prefix).
    if (sy > rp[sx]) {
        if (sy < rp[static_cast<size_t>(sx) + 1]) {
            r.head_row = sx;
            r.head_begin = sy;
            r.head_end = rp[static_cast<size_t>(sx) + 1];
            r.head_atomic = true;
        }
        r.first_complete_row = sx + 1;
    } else {
        r.first_complete_row = sx;
    }
    r.last_complete_row = ex;

    // Tail: the prefix [rp[ex], ey) of row ex. If ey lands exactly on the
    // row's end, this thread computed the whole row alone (the next
    // thread's share starts with the row-boundary item), so the row is
    // promoted to a plain complete row.
    if (ex < a.rows() && ey > rp[ex]) {
        if (ey < rp[static_cast<size_t>(ex) + 1]) {
            r.tail_row = ex;
            r.tail_begin = rp[ex];
            r.tail_end = ey;
            r.tail_atomic = true;
        } else {
            r.last_complete_row = ex + 1;
        }
    }
    return r;
}

ScheduleCensus
MergePathSchedule::census(const CsrMatrix &a) const
{
    ScheduleCensus c;
    const auto &rp = a.row_ptr();
    std::vector<index_t> atomic_rows;

    for (index_t t = 0; t < num_threads(); ++t) {
        const ThreadWork &w = work_[static_cast<size_t>(t)];
        if (w.empty()) {
            ++c.empty_threads;
            continue;
        }
        int64_t nnz_t = w.end.nz - w.start.nz;
        int64_t items_t = (w.end.row - w.start.row) + nnz_t;
        c.max_nnz_per_thread = std::max(c.max_nnz_per_thread, nnz_t);
        c.max_items_per_thread = std::max(c.max_items_per_thread, items_t);

        ResolvedWork r = resolve(t, a);
        if (r.has_head()) {
            int64_t len = r.head_end - r.head_begin;
            if (r.head_atomic) {
                ++c.atomic_commits;
                c.atomic_nnz += len;
                atomic_rows.push_back(r.head_row);
            } else {
                ++c.plain_row_writes;
                c.plain_nnz += len;
            }
        }
        if (r.last_complete_row > r.first_complete_row) {
            c.plain_row_writes +=
                r.last_complete_row - r.first_complete_row;
            c.plain_nnz += rp[r.last_complete_row] -
                           rp[r.first_complete_row];
        }
        if (r.has_tail()) {
            ++c.atomic_commits;
            c.atomic_nnz += r.tail_end - r.tail_begin;
            atomic_rows.push_back(r.tail_row);
        }
    }

    std::sort(atomic_rows.begin(), atomic_rows.end());
    atomic_rows.erase(std::unique(atomic_rows.begin(), atomic_rows.end()),
                      atomic_rows.end());
    c.split_rows = static_cast<int64_t>(atomic_rows.size());
    return c;
}

void
MergePathSchedule::validate(const CsrMatrix &a) const
{
    MPS_CHECK(!work_.empty(), "schedule has no threads");
    int64_t total = static_cast<int64_t>(a.rows()) + a.nnz();

    MPS_CHECK(work_.front().start.row == 0 && work_.front().start.nz == 0,
              "schedule must start at the origin");
    MPS_CHECK(work_.back().end.row == a.rows() &&
                  work_.back().end.nz == a.nnz(),
              "schedule must end at (rows, nnz)");

    int64_t covered = 0;
    for (size_t t = 0; t < work_.size(); ++t) {
        const ThreadWork &w = work_[t];
        MPS_CHECK(w.end.row >= w.start.row && w.end.nz >= w.start.nz,
                  "thread ", t, " has a backwards range");
        int64_t items = (w.end.row - w.start.row) +
                        (w.end.nz - w.start.nz);
        MPS_CHECK(items <= items_per_thread_, "thread ", t,
                  " exceeds the merge-path cost: ", items, " > ",
                  items_per_thread_);
        if (t + 1 < work_.size()) {
            MPS_CHECK(w.end == work_[t + 1].start,
                      "thread ranges must be contiguous at thread ", t);
        }
        covered += items;
    }
    MPS_CHECK(covered == total, "schedule covers ", covered,
              " merge items, expected ", total);

    // Every nnz range must lie inside its row per the CSR row pointers.
    const auto &rp = a.row_ptr();
    for (size_t t = 0; t < work_.size(); ++t) {
        const ThreadWork &w = work_[t];
        if (w.empty())
            continue;
        MPS_CHECK(w.start.row <= a.rows() && w.end.row <= a.rows(),
                  "thread ", t, " row out of range");
        if (w.start.row < a.rows()) {
            MPS_CHECK(w.start.nz >= rp[w.start.row] &&
                          w.start.nz <=
                              rp[static_cast<size_t>(w.start.row) + 1],
                      "thread ", t, " start nz not within start row");
        }
        if (w.end.row < a.rows()) {
            MPS_CHECK(w.end.nz >= rp[w.end.row] &&
                          w.end.nz <=
                              rp[static_cast<size_t>(w.end.row) + 1],
                      "thread ", t, " end nz not within end row");
        }
    }
}

} // namespace mps
