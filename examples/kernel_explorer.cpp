/**
 * @file
 * Kernel explorer: run every SpMM strategy on one graph, verify all
 * results agree with the sequential reference, measure host
 * wall-clock, and show the modelled RTX 6000 execution time from the
 * SIMT model side by side.
 *
 *   ./kernel_explorer [--graph=Wiki-Vote] [--dim=16] [--shrink=1]
 */
#include <cstdio>
#include <string>

#include "mps/core/policy.h"
#include "mps/core/spmm.h"
#include "mps/kernels/registry.h"
#include "mps/simt/codegen.h"
#include "mps/simt/gpu_model.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/cli.h"
#include "mps/util/rng.h"
#include "mps/util/table.h"
#include "mps/util/work_steal_pool.h"
#include "mps/util/timer.h"

using namespace mps;

namespace {

/** Modelled GPU time for the registry kernel names. */
double
gpu_model_us(const CsrMatrix &a, index_t dim, const std::string &name)
{
    GpuConfig gpu = GpuConfig::rtx6000();
    KernelWorkload w;
    if (name == "mergepath") {
        w = build_mergepath_workload(a, dim,
                                     default_merge_path_cost(dim), gpu);
    } else if (name == "gnnadvisor") {
        w = build_gnnadvisor_workload(a, dim, 0,
                                      GnnAdvisorVariant::kBaseline, gpu);
    } else if (name == "row_split") {
        w = build_rowsplit_workload(a, dim, 0, gpu);
    } else if (name == "mergepath_serial") {
        w = build_mergepath_serial_workload(a, dim, 1024, gpu);
    } else if (name == "adaptive") {
        w = build_cusparse_workload(a, dim, gpu);
    } else {
        return 0.0; // reference kernel: host-only
    }
    return simulate_gpu(w, gpu).microseconds;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("SpMM kernel explorer");
    flags.add_string("graph", "Wiki-Vote", "Table II dataset name");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("shrink", 1, "downscale factor for quick runs");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    const auto &spec = find_dataset_spec(flags.get_string("graph"));
    index_t shrink = static_cast<index_t>(flags.get_int("shrink"));
    CsrMatrix a = shrink > 1 ? make_scaled_dataset(spec, shrink)
                             : make_dataset(spec);
    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    std::printf("graph %s%s: %d nodes, %d nnz, %s\n", spec.name.c_str(),
                shrink > 1 ? " (scaled)" : "", a.rows(), a.nnz(),
                to_string(compute_degree_stats(a)).c_str());

    Pcg32 rng(11);
    DenseMatrix b(a.cols(), dim);
    b.fill_random(rng);
    DenseMatrix gold(a.rows(), dim);
    reference_spmm(a, b, gold);

    WorkStealPool pool;
    Table table({"kernel", "host_ms", "gpu_model_us", "correct"});
    for (const std::string &name : spmm_kernel_names()) {
        auto kernel = make_spmm_kernel(name);
        kernel->prepare(a, dim);
        DenseMatrix c(a.rows(), dim);
        Timer timer;
        kernel->run(a, b, c, pool);
        double host_ms = timer.elapsed_ms();
        bool ok = c.approx_equal(gold, 1e-3, 1e-3);

        table.new_row();
        table.add(name);
        table.add(host_ms, 3);
        double us = gpu_model_us(a, dim, name);
        if (us > 0.0)
            table.add(us, 2);
        else
            table.add("-");
        table.add(ok ? "ok" : "MISMATCH");
    }
    table.print(flags.get_bool("csv"));
    return 0;
}
