/**
 * @file
 * Train a 2-layer GCN on a synthetic planted-communities problem.
 * Every epoch runs four merge-path SpMMs (two forward aggregations,
 * two backward) — training is an even heavier consumer of the paper's
 * kernel than inference.
 *
 *   ./train_gcn [--nodes=2000] [--classes=4] [--features=16]
 *               [--hidden=16] [--epochs=100] [--lr=0.5]
 */
#include <cstdio>

#include "mps/gcn/training.h"
#include "mps/util/cli.h"
#include "mps/util/work_steal_pool.h"
#include "mps/util/timer.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("train a 2-layer GCN on planted communities");
    flags.add_int("nodes", 2000, "graph nodes");
    flags.add_int("classes", 4, "community / class count");
    flags.add_int("features", 16, "input feature width");
    flags.add_int("hidden", 16, "hidden width");
    flags.add_int("avg-degree", 10, "average node degree");
    flags.add_int("epochs", 100, "training epochs");
    flags.add_double("lr", 0.5, "SGD learning rate");
    flags.add_int("seed", 7, "problem + init seed");
    flags.parse(argc, argv);

    ClassificationProblem prob = make_classification_problem(
        static_cast<index_t>(flags.get_int("nodes")),
        static_cast<index_t>(flags.get_int("classes")),
        static_cast<index_t>(flags.get_int("features")),
        static_cast<index_t>(flags.get_int("avg-degree")),
        static_cast<uint64_t>(flags.get_int("seed")));
    std::printf("problem: %d nodes, %d edges, %d classes\n",
                prob.graph.rows(), prob.graph.nnz(),
                static_cast<int>(prob.num_classes));

    WorkStealPool pool;
    GcnTrainer trainer(static_cast<index_t>(flags.get_int("features")),
                       static_cast<index_t>(flags.get_int("hidden")),
                       prob.num_classes,
                       static_cast<uint64_t>(flags.get_int("seed")),
                       static_cast<float>(flags.get_double("lr")));

    Timer timer;
    const int epochs = static_cast<int>(flags.get_int("epochs"));
    for (int epoch = 0; epoch < epochs; ++epoch) {
        double loss = trainer.step(prob.graph, prob.features,
                                   prob.labels, prob.train_mask, pool);
        if (epoch % 10 == 0 || epoch == epochs - 1) {
            DenseMatrix logits =
                trainer.predict(prob.graph, prob.features, pool);
            std::printf(
                "epoch %3d  loss %.4f  train acc %.3f  test acc %.3f\n",
                epoch, loss,
                accuracy(logits, prob.labels, prob.train_mask),
                accuracy(logits, prob.labels, prob.test_mask));
        }
    }
    std::printf("trained %d epochs in %.2f s\n", epochs,
                timer.elapsed_seconds());
    return 0;
}
