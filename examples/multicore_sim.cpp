/**
 * @file
 * Run one SpMM on the simulated Table I multicore and print the
 * scaling curve — a small interactive version of the Figure 9
 * experiment.
 *
 *   ./multicore_sim [--graph=Pubmed] [--dim=16] [--shrink=4]
 *                   [--kernel=mergepath]
 */
#include <cstdio>

#include "mps/multicore/tracegen.h"
#include "mps/sparse/datasets.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("multicore scaling demo");
    flags.add_string("graph", "Pubmed", "Table II dataset name");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("shrink", 4, "downscale factor for quick runs");
    flags.add_string("kernel", "mergepath",
                     "kernel: mergepath | gnnadvisor");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    const auto &spec = find_dataset_spec(flags.get_string("graph"));
    index_t shrink = static_cast<index_t>(flags.get_int("shrink"));
    CsrMatrix a = shrink > 1 ? make_scaled_dataset(spec, shrink)
                             : make_dataset(spec);
    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    std::printf("graph %s%s: %d nodes, %d nnz; kernel %s, dim %d\n",
                spec.name.c_str(), shrink > 1 ? " (scaled)" : "",
                a.rows(), a.nnz(), flags.get_string("kernel").c_str(),
                static_cast<int>(dim));

    MulticoreConfig base = MulticoreConfig::table1();
    Table table({"cores", "cycles", "speedup_vs_64", "compute_%",
                 "memory_%", "l1_miss", "dram_lines", "invalidations"});
    double base_cycles = 0.0;
    for (int cores : {64, 128, 256, 512, 1024}) {
        MulticoreConfig cfg = base.scaled_to(cores);
        MulticoreResult r = run_spmm_on_multicore(
            a, dim, cfg, flags.get_string("kernel"));
        if (cores == 64)
            base_cycles = r.completion_cycles;
        double busy = r.avg_compute_cycles + r.avg_memory_cycles;
        table.new_row();
        table.add_int(cores);
        table.add(r.completion_cycles, 0);
        table.add(base_cycles / r.completion_cycles, 2);
        table.add(100.0 * r.avg_compute_cycles / std::max(busy, 1.0), 1);
        table.add(100.0 * r.avg_memory_cycles / std::max(busy, 1.0), 1);
        table.add_int(r.total_l1_misses);
        table.add_int(r.total_dram_lines);
        table.add_int(r.total_invalidations);
    }
    table.print(flags.get_bool("csv"));
    return 0;
}
