/**
 * @file
 * 2-layer GCN inference on a citation-style graph — the paper's
 * motivating application. Demonstrates the full pipeline
 * sigma(A x (X x W)) per layer, the choice of aggregation kernel, and
 * the online vs. offline scheduling modes of Figure 8.
 *
 *   ./gcn_inference [--graph=Cora] [--features=64] [--hidden=16]
 *                   [--classes=7] [--kernel=mergepath] [--runs=5]
 */
#include <cstdio>

#include "mps/gcn/model.h"
#include "mps/kernels/registry.h"
#include "mps/sparse/datasets.h"
#include "mps/util/cli.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("2-layer GCN inference");
    flags.add_string("graph", "Cora", "Table II dataset name");
    flags.add_int("features", 64, "input feature width");
    flags.add_int("hidden", 16, "hidden dimension");
    flags.add_int("classes", 7, "output classes");
    flags.add_string("kernel", "mergepath", "aggregation SpMM kernel");
    flags.add_int("runs", 5, "inference repetitions per mode");
    flags.parse(argc, argv);

    // GCN-normalized adjacency matrix of the citation graph.
    CsrMatrix a = make_dataset(flags.get_string("graph"),
                               ValueMode::kGcnNormalized);
    std::printf("graph %s: %d nodes, %d edges\n",
                flags.get_string("graph").c_str(), a.rows(), a.nnz());

    const index_t features = static_cast<index_t>(flags.get_int("features"));
    DenseMatrix x(a.rows(), features);
    Pcg32 rng(3);
    x.fill_random(rng, 0.0f, 1.0f);

    WorkStealPool pool;
    const int runs = static_cast<int>(flags.get_int("runs"));
    for (ScheduleMode mode : {ScheduleMode::kOffline,
                              ScheduleMode::kOnline}) {
        GcnModel model = GcnModel::two_layer(
            features, static_cast<index_t>(flags.get_int("hidden")),
            static_cast<index_t>(flags.get_int("classes")), 1,
            flags.get_string("kernel"), mode);
        double schedule_total = 0.0, compute_total = 0.0;
        DenseMatrix out;
        for (int r = 0; r < runs; ++r) {
            InferenceStats stats;
            out = model.infer(a, x, pool, &stats);
            schedule_total += stats.schedule_seconds;
            compute_total += stats.compute_seconds;
        }
        std::printf(
            "%-8s %d inferences: schedule %.3f ms, compute %.3f ms "
            "(overhead %.1f%%)\n",
            mode == ScheduleMode::kOffline ? "offline" : "online", runs,
            schedule_total * 1e3, compute_total * 1e3,
            100.0 * schedule_total / (schedule_total + compute_total));
        // Show a few logits so the output is visibly real.
        std::printf("  node 0 logits:");
        for (index_t c2 = 0; c2 < out.cols(); ++c2)
            std::printf(" %+.3f", out(0, c2));
        std::printf("\n");
    }
    std::printf("\nOffline reuses the merge-path schedule across"
                " inferences; online rebuilds it each time (an evolving"
                " graph), costing only a small fraction of the inference"
                " (paper Fig. 8: ~2%%).\n");
    return 0;
}
