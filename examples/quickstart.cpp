/**
 * @file
 * Quickstart: build a sparse matrix, compute C = A * B with
 * MergePath-SpMM, and inspect the load-balanced schedule.
 *
 *   ./quickstart [--nodes=N] [--nnz=M] [--max-degree=D] [--dim=K]
 *                [--threads=T]
 */
#include <cstdio>

#include "mps/core/spmm.h"
#include "mps/sparse/degree_stats.h"
#include "mps/sparse/generate.h"
#include "mps/util/cli.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("MergePath-SpMM quickstart");
    flags.add_int("nodes", 10000, "graph nodes");
    flags.add_int("nnz", 60000, "graph non-zeros");
    flags.add_int("max-degree", 2000, "maximum row degree (evil row)");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("threads", 256, "merge-path threads");
    flags.parse(argc, argv);

    // 1. A power-law graph: most rows are short, a few are evil.
    PowerLawParams params;
    params.nodes = static_cast<index_t>(flags.get_int("nodes"));
    params.target_nnz = static_cast<index_t>(flags.get_int("nnz"));
    params.max_degree = static_cast<index_t>(flags.get_int("max-degree"));
    params.seed = 42;
    CsrMatrix a = power_law_graph(params);
    std::printf("graph: %d nodes, %d non-zeros, %s\n", a.rows(), a.nnz(),
                to_string(compute_degree_stats(a)).c_str());

    // 2. A dense input matrix (e.g. the XW product of a GCN layer).
    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    DenseMatrix b(a.cols(), dim);
    Pcg32 rng(7);
    b.fill_random(rng);

    // 3. The merge-path schedule: every thread gets an equal share of
    //    rows + non-zeros, no matter how skewed the rows are.
    index_t threads = static_cast<index_t>(flags.get_int("threads"));
    MergePathSchedule schedule = MergePathSchedule::build(a, threads);
    ScheduleCensus census = schedule.census(a);
    std::printf("schedule: %d threads x <=%lld merge items; "
                "%lld atomic commits, %lld plain row writes, "
                "%lld split rows\n",
                schedule.num_threads(),
                static_cast<long long>(schedule.items_per_thread()),
                static_cast<long long>(census.atomic_commits),
                static_cast<long long>(census.plain_row_writes),
                static_cast<long long>(census.split_rows));

    // 4. Run the kernel and verify against the sequential reference.
    WorkStealPool pool;
    DenseMatrix c(a.rows(), dim), gold(a.rows(), dim);
    mergepath_spmm_parallel(a, b, c, schedule, pool);
    reference_spmm(a, b, gold);
    std::printf("max |difference| vs reference: %.3g -> %s\n",
                c.max_abs_diff(gold),
                c.approx_equal(gold, 1e-3, 1e-4) ? "OK" : "MISMATCH");
    return c.approx_equal(gold, 1e-3, 1e-4) ? 0 : 1;
}
