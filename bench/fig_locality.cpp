/**
 * @file
 * Cache-locality study: the auto-resolved locality layer (column
 * tiling + software prefetch), an explicitly tiled configuration and
 * BFS reordering against the untiled pre-locality kernel, on a
 * power-law graph whose dense operand exceeds the detected caches.
 *
 * For each d in {32, 128, 256, 512} the same merge-path schedule is
 * executed four ways and the best-of-reps wall time reported:
 *
 *  - untiled: one full-width sweep, no prefetch (the pre-locality
 *    kernel — the baseline every speedup is against);
 *  - locality: what the shipped auto-tuner resolves for this operand
 *    (panel width from the cache hierarchy, prefetch distance from d).
 *    On hosts where panel residency cannot beat DRAM the tuner keeps
 *    one sweep and lets the prefetcher carry the win;
 *  - tiled: an explicit MPS_TILE_D-style panel (the auto width when
 *    the tuner tiles, 64 otherwise), isolating what forced tiling
 *    costs or saves on this host;
 *  - reordered: locality + BFS row permutation with commit-time
 *    scatter (plan built once outside the timed region, as in
 *    serving).
 *
 * Alongside wall time the effective gather bandwidth nnz * d * 4 B /
 * time is reported — the B-row traffic the traversal pulls through the
 * memory hierarchy per second. Before timing, tiled and untiled
 * sequential runs are bit-compared on the same schedule (the panel
 * loop partitions columns, never the non-zero stream) and the result
 * is part of the JSON document.
 *
 * Usage: fig_locality [nodes] [nnz] [max_degree] [threads] [reps]
 *        (defaults: 500000, 5000000, 50000, hw threads, 3)
 */
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/sparse/generate.h"
#include "mps/sparse/reorder.h"
#include "mps/util/json.h"
#include "mps/util/rng.h"
#include "mps/util/timer.h"
#include "mps/util/work_steal_pool.h"

namespace {

using namespace mps;

template <class Fn>
double
best_of_reps(int reps, const Fn &run)
{
    run(); // warm the pool, the pages and the schedule
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        Timer timer;
        run();
        best = std::min(best, timer.elapsed_seconds());
    }
    return best;
}

bool
bit_identical(const DenseMatrix &x, const DenseMatrix &y)
{
    for (index_t r = 0; r < x.rows(); ++r) {
        for (index_t d = 0; d < x.cols(); ++d) {
            if (x(r, d) != y(r, d))
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const index_t nodes =
        argc > 1 ? static_cast<index_t>(std::atol(argv[1])) : 500000;
    const index_t nnz =
        argc > 2 ? static_cast<index_t>(std::atol(argv[2])) : 5000000;
    const index_t max_degree =
        argc > 3 ? static_cast<index_t>(std::atol(argv[3])) : 50000;
    const unsigned threads =
        argc > 4 ? static_cast<unsigned>(std::atoi(argv[4]))
                 : std::max(1u, std::thread::hardware_concurrency());
    const int reps = argc > 5 ? std::atoi(argv[5]) : 3;

    PowerLawParams params;
    params.nodes = nodes;
    params.target_nnz = nnz;
    params.max_degree = max_degree;
    params.seed = 20;
    CsrMatrix a = power_law_graph(params);
    ReorderPlan plan = build_reorder_plan(a, ReorderKind::kBfs);
    WorkStealPool pool(threads);

    JsonWriter w;
    w.begin_object();
    w.key("bench").value("fig_locality");
    w.key("nodes").value(static_cast<int64_t>(a.rows()));
    w.key("nnz").value(static_cast<int64_t>(a.nnz()));
    w.key("max_degree").value(static_cast<int64_t>(max_degree));
    w.key("threads").value(static_cast<int64_t>(threads));
    w.key("reps").value(static_cast<int64_t>(reps));
    w.key("l2_bytes").value(detected_l2_bytes());
    w.key("llc_bytes").value(detected_llc_bytes());
    w.key("reorder").value("bfs");

    bool all_bit_identical = true;
    w.key("sweep").begin_array();
    for (index_t dim : {32, 128, 256, 512}) {
        DenseMatrix b(a.cols(), dim);
        Pcg32 rng(7 + static_cast<uint64_t>(dim));
        b.fill_random(rng);
        DenseMatrix c(a.rows(), dim);

        MergePathSchedule sched = MergePathSchedule::build(
            a, static_cast<index_t>(threads) * 16);
        MergePathSchedule psched = MergePathSchedule::build(
            plan.matrix, static_cast<index_t>(threads) * 16);

        SpmmLocality untiled; // one sweep, no prefetch, identity
        SpmmLocality locality;
        locality.tile_d = auto_tile_d(a.cols(), dim);
        locality.prefetch = auto_prefetch_distance(dim);
        SpmmLocality tiled = locality;
        if (!tiled.tiled(dim))
            tiled.tile_d = std::min<index_t>(64, dim);
        SpmmLocality reordered = locality;
        reordered.row_scatter = plan.inverse.data();

        // Bit-identity gate (sequential: commit order fixed).
        {
            DenseMatrix cu(a.rows(), dim), ct(a.rows(), dim);
            mergepath_spmm_sequential(a, b, cu, sched, untiled);
            mergepath_spmm_sequential(a, b, ct, sched, tiled);
            all_bit_identical = all_bit_identical && bit_identical(cu, ct);
        }

        const double untiled_s = best_of_reps(reps, [&] {
            mergepath_spmm_parallel(a, b, c, sched, pool, untiled);
        });
        const double locality_s = best_of_reps(reps, [&] {
            mergepath_spmm_parallel(a, b, c, sched, pool, locality);
        });
        const double tiled_s = best_of_reps(reps, [&] {
            mergepath_spmm_parallel(a, b, c, sched, pool, tiled);
        });
        const double reordered_s = best_of_reps(reps, [&] {
            mergepath_spmm_parallel(plan.matrix, b, c, psched, pool,
                                    reordered);
        });

        const double gathered_gb = static_cast<double>(a.nnz()) * dim *
                                   sizeof(value_t) / 1e9;
        w.begin_object();
        w.key("dim").value(static_cast<int64_t>(dim));
        w.key("auto_tile_d").value(static_cast<int64_t>(
            locality.tiled(dim) ? locality.tile_d : dim));
        w.key("explicit_tile_d")
            .value(static_cast<int64_t>(tiled.tile_d));
        w.key("prefetch").value(static_cast<int64_t>(locality.prefetch));
        w.key("untiled_ms").value(untiled_s * 1e3);
        w.key("locality_ms").value(locality_s * 1e3);
        w.key("tiled_ms").value(tiled_s * 1e3);
        w.key("reordered_ms").value(reordered_s * 1e3);
        w.key("untiled_gather_gbps").value(gathered_gb / untiled_s);
        w.key("locality_gather_gbps").value(gathered_gb / locality_s);
        w.key("locality_speedup").value(untiled_s / locality_s);
        w.key("tiled_speedup").value(untiled_s / tiled_s);
        w.key("reordered_speedup").value(untiled_s / reordered_s);
        w.end_object();
    }
    w.end_array();
    w.key("bit_identical").value(all_bit_identical);
    w.end_object();
    std::cout << w.str() << "\n";
    return all_bit_identical ? 0 : 1;
}
