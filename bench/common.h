/**
 * @file
 * Shared helpers for the figure benches: modelling a named kernel on
 * the SIMT GPU, graph-list selection, and tuned-baseline sweeps.
 */
#ifndef MPS_BENCH_COMMON_H
#define MPS_BENCH_COMMON_H

#include <string>
#include <vector>

#include "mps/simt/codegen.h"
#include "mps/simt/gpu_model.h"
#include "mps/sparse/datasets.h"

namespace mps::bench {

/** Options for model_kernel_us(). */
struct ModelOptions
{
    /** Merge-path cost; 0 = the tuned default for the dimension. */
    index_t cost = 0;
    /** Neighbor-group size; 0 = average degree. */
    index_t ng_size = 0;
};

/**
 * Model one A x XW kernel on the RTX 6000 model and return its time in
 * microseconds. Kernel names: "mergepath", "gnnadvisor",
 * "gnnadvisor_opt", "row_split", "mergepath_serial" (thread count
 * swept and the best configuration reported, mirroring a tuned
 * baseline), "cusparse".
 */
double model_kernel_us(const CsrMatrix &a, index_t dim,
                       const std::string &kernel,
                       const GpuConfig &config,
                       const ModelOptions &options = {});

/** Full result variant of model_kernel_us for breakdown output. */
GpuKernelResult model_kernel(const CsrMatrix &a, index_t dim,
                             const std::string &kernel,
                             const GpuConfig &config,
                             const ModelOptions &options = {});

/**
 * Resolve a --graphs flag value to dataset specs: "all", "type1",
 * "type2", a comma-separated name list, or "small" (nnz <= 1.5M).
 */
std::vector<DatasetSpec> select_graphs(const std::string &selector);

} // namespace mps::bench

#endif // MPS_BENCH_COMMON_H
