/**
 * @file
 * Serving throughput: batched vs unbatched inference over one power-law
 * graph. For each (clients, max_batch) sweep point, closed-loop client
 * threads pump requests through a Server and the table reports request
 * throughput, achieved batch sizes and latency percentiles. Batching
 * amortizes the sparse traversal of A over the batch — at 8 clients,
 * max_batch=8 should beat max_batch=1 well beyond the ~1.5x the serving
 * subsystem promises.
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "mps/core/schedule_cache.h"
#include "mps/gcn/layer.h"
#include "mps/serve/server.h"
#include "mps/sparse/generate.h"
#include "mps/util/cli.h"
#include "mps/util/rng.h"
#include "mps/util/table.h"
#include "mps/util/timer.h"

using namespace mps;

namespace {

struct SweepResult
{
    double throughput_rps = 0.0;
    double mean_batch = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
};

SweepResult
run_point(const CsrMatrix &graph, const std::vector<GcnLayer> &layers,
          const DenseMatrix &features, ScheduleCache &cache, int clients,
          int max_batch, int requests, unsigned workers)
{
    serve::ServeConfig cfg;
    cfg.queue_capacity = 4096;
    cfg.num_workers = workers;
    cfg.batch.max_batch = max_batch;
    cfg.batch.max_delay_us = 2000;
    cfg.overflow = serve::OverflowPolicy::kBlock;
    serve::Server server(cfg, &cache);
    const uint64_t gid = server.register_graph(graph, layers);
    server.infer(gid, features); // warm-up + schedule build

    std::atomic<int64_t> ok{0};
    Timer wall;
    std::vector<std::thread> pumps;
    pumps.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        pumps.emplace_back([&server, &features, &ok, requests, gid] {
            for (int i = 0; i < requests; ++i) {
                DenseMatrix x = features;
                if (server.infer(gid, std::move(x)).ok())
                    ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : pumps)
        t.join();
    const double wall_ms = wall.elapsed_ms();
    server.shutdown();
    serve::ServerStats st = server.stats();

    SweepResult r;
    r.throughput_rps = wall_ms <= 0.0 ? 0.0
                                      : static_cast<double>(ok.load()) *
                                            1e3 / wall_ms;
    r.mean_batch = st.mean_batch_size;
    r.p50 = st.latency_ms.p50;
    r.p99 = st.latency_ms.p99;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("serving throughput: batched vs unbatched GCN"
                     " inference");
    flags.add_int("nodes", 4096, "power-law graph nodes");
    flags.add_int("avg-degree", 128, "average degree");
    flags.add_int("max-degree", 512, "maximum row degree");
    flags.add_int("feat", 8, "input feature dimension");
    flags.add_int("hidden", 4, "hidden layer width");
    flags.add_int("requests", 32, "requests per client per point");
    flags.add_int("workers", 2, "server worker threads");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    PowerLawParams p;
    p.nodes = static_cast<index_t>(flags.get_int("nodes"));
    p.target_nnz =
        p.nodes * static_cast<index_t>(flags.get_int("avg-degree"));
    p.max_degree = static_cast<index_t>(flags.get_int("max-degree"));
    p.seed = 7;
    p.value_mode = ValueMode::kGcnNormalized;
    CsrMatrix graph = power_law_graph(p);

    const index_t feat = static_cast<index_t>(flags.get_int("feat"));
    const index_t hidden = static_cast<index_t>(flags.get_int("hidden"));
    std::vector<GcnLayer> layers;
    layers.emplace_back(random_layer_weights(feat, hidden, 11),
                        Activation::kRelu);
    layers.emplace_back(random_layer_weights(hidden, hidden, 13),
                        Activation::kNone);

    DenseMatrix features(graph.rows(), feat);
    Pcg32 rng(3);
    features.fill_random(rng);

    const int requests = static_cast<int>(flags.get_int("requests"));
    const unsigned workers =
        static_cast<unsigned>(flags.get_int("workers"));
    ScheduleCache cache; // shared: schedules build once for the sweep

    Table table({"clients", "unbatched_rps", "batched_rps", "speedup",
                 "mean_batch", "batched_p50_ms", "batched_p99_ms"});
    for (int clients : {1, 2, 4, 8}) {
        SweepResult base = run_point(graph, layers, features, cache,
                                     clients, 1, requests, workers);
        SweepResult batched = run_point(graph, layers, features, cache,
                                        clients, 8, requests, workers);
        table.new_row();
        table.add_int(clients);
        table.add(base.throughput_rps, 1);
        table.add(batched.throughput_rps, 1);
        table.add(batched.throughput_rps /
                      std::max(1e-9, base.throughput_rps),
                  2);
        table.add(batched.mean_batch, 2);
        table.add(batched.p50, 3);
        table.add(batched.p99, 3);
    }
    table.print(flags.get_bool("csv"));
    return 0;
}
