/**
 * @file
 * Figure 8: scheduling overhead of MergePath-SpMM in the online
 * setting: the schedule is computed (and written to memory) before the
 * two kernel invocations of a 2-layer GCN inference.
 *
 * overhead% = schedule_time / (schedule_time + 2 * kernel_time), both
 * from the GPU model. The host-side schedule construction wall time is
 * reported as well for reference.
 *
 * Paper reference: ~2% geomean; highest on the smallest graph (Cora,
 * ~10%); under 1% on large graphs such as com-Amazon.
 */
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/util/cli.h"
#include "mps/util/stats.h"
#include "mps/util/table.h"
#include "mps/util/timer.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 8: online scheduling overhead (2-layer GCN)");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_int("dim", 16, "hidden dimension size");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    GpuConfig gpu = GpuConfig::rtx6000();
    const index_t cost = default_merge_path_cost(dim);

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"graph", "schedule_us", "kernel_us", "2layer_total_us",
                 "overhead_%", "host_build_ms"});
    std::vector<double> overheads;
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        GpuKernelResult sched = simulate_gpu(
            build_schedule_build_workload(a, dim, cost, gpu), gpu);
        // The schedule build is launched back-to-back with the layer
        // kernels, so its launch overhead overlaps the preceding
        // kernel's drain; charge only the schedule body.
        double sched_us = gpu.cycles_to_us(
            std::max(0.0, sched.cycles - gpu.kernel_launch_cycles));
        double kernel =
            bench::model_kernel_us(a, dim, "mergepath", gpu);
        double total = sched_us + 2.0 * kernel;
        double overhead = 100.0 * sched_us / total;
        overheads.push_back(overhead);

        // Host-side schedule construction wall time, for reference.
        SimdPolicy policy;
        LaunchConfig launch =
            make_launch_config(a.rows(), a.nnz(), dim, cost, policy);
        Timer timer;
        MergePathSchedule host =
            MergePathSchedule::build(a, launch.num_threads);
        double host_ms = timer.elapsed_ms();
        (void)host;

        table.new_row();
        table.add(spec.name);
        table.add(sched_us, 2);
        table.add(kernel, 2);
        table.add(total, 2);
        table.add(overhead, 1);
        table.add(host_ms, 3);
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\ngeomean scheduling overhead: %.1f%% (paper: ~2%%; Cora highest"
        " ~10%%, com-Amazon <1%%)\n",
        geomean(overheads));
    return 0;
}
