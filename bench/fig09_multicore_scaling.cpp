/**
 * @file
 * Figure 9 + Table I: MergePath-SpMM and GNNAdvisor completion times
 * on the simulated large multicore at increasing core counts (64 to
 * 1024), normalized to each kernel's own 64-core run, with the
 * compute / memory-stall breakdown. Threads map one-to-one onto cores;
 * per-core cache capacity and total DRAM bandwidth follow the paper's
 * scaling methodology.
 *
 * Paper reference: GNNAdvisor stops scaling on evil-row graphs (Cora,
 * Nell); MergePath-SpMM scales to 1024 cores on everything except
 * Cora (whose merge-path cost drops below ~25 at 1024 cores and stops
 * at 512); MergePath-SpMM is ~2x faster than GNNAdvisor at 1024
 * cores; memory stalls scale worse than compute.
 */
#include <cstdio>

#include "common.h"
#include "mps/multicore/tracegen.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

namespace {

void
print_table1(const MulticoreConfig &c)
{
    std::printf("Table I configuration (1024-core baseline):\n");
    std::printf("  cores                 %d in-order @ %.0f GHz\n",
                c.num_cores, c.clock_ghz);
    std::printf("  L1 per core           %lld KB, %d-way, %d cycle\n",
                static_cast<long long>(c.l1_bytes / 1024), c.l1_assoc,
                c.l1_latency);
    std::printf("  L2 slice per core     %lld KB (%lld MB total)\n",
                static_cast<long long>(c.l2_slice_bytes / 1024),
                static_cast<long long>(c.l2_slice_bytes * c.num_cores /
                                       (1024 * 1024)));
    std::printf("  directory             MESI, Limited-%d (ACKwise)\n",
                c.directory_pointers);
    std::printf("  mesh                  2-D, X-Y routing, %d-cycle hops,"
                " %d-bit flits\n",
                c.hop_cycles, c.flit_bits);
    std::printf("  memory controllers    %d, %.0f GB/s total, %.0f ns\n\n",
                c.num_mem_controllers, c.dram_total_gbps,
                c.dram_latency_ns);
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 9: multicore scaling 64 -> 1024 cores");
    flags.add_string(
        "graphs", "Cora,Pubmed,Nell,com-Amazon,Twitter-partial",
        "graph selector");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.add_bool("print-config", true, "print the Table I machine");
    flags.parse(argc, argv);

    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    MulticoreConfig base = MulticoreConfig::table1();
    if (flags.get_bool("print-config"))
        print_table1(base);

    const int core_counts[] = {64, 128, 256, 512, 1024};
    const char *kernels[] = {"gnnadvisor", "mergepath"};

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"graph", "kernel", "cores", "cycles", "norm_to_64",
                 "compute_%", "memory_%", "speedup_vs_gnnadvisor"});
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        double base64[2] = {0.0, 0.0};
        double gnnadvisor_cycles[std::size(core_counts)] = {};
        for (int k = 0; k < 2; ++k) {
            for (size_t ci = 0; ci < std::size(core_counts); ++ci) {
                MulticoreConfig cfg = base.scaled_to(core_counts[ci]);
                MulticoreResult r =
                    run_spmm_on_multicore(a, dim, cfg, kernels[k]);
                if (ci == 0)
                    base64[k] = r.completion_cycles;
                if (k == 0)
                    gnnadvisor_cycles[ci] = r.completion_cycles;
                double busy =
                    r.avg_compute_cycles + r.avg_memory_cycles;
                table.new_row();
                table.add(spec.name);
                table.add(kernels[k]);
                table.add_int(core_counts[ci]);
                table.add(r.completion_cycles, 0);
                table.add(r.completion_cycles / base64[k], 3);
                table.add(100.0 * r.avg_compute_cycles /
                              std::max(busy, 1.0),
                          1);
                table.add(100.0 * r.avg_memory_cycles /
                              std::max(busy, 1.0),
                          1);
                table.add(k == 0 ? 1.0
                                 : gnnadvisor_cycles[ci] /
                                       r.completion_cycles,
                          2);
            }
        }
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nnorm_to_64 < 1 means the kernel scales beyond 64 cores (lower"
        " is better).\n");
    return 0;
}
