/**
 * @file
 * Figure 1: power-law degree distributions of real-world graphs.
 *
 * Prints, for each selected graph, the log2-binned histogram of
 * non-zeros per row plus the summary statistics that drive the paper's
 * load-imbalance story (max vs. average degree, share of non-zeros in
 * the top 1% of rows).
 */
#include <cstdio>

#include "common.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags(
        "Figure 1: degree distributions of the evaluation graphs");
    flags.add_string("graphs", "Wiki-Vote,Nell,soc-BlogCatalog,artist",
                     "graph selector (all|type1|type2|small|name,...)");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.add_bool("histograms", true, "print per-graph histograms");
    flags.parse(argc, argv);

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"graph", "nodes", "nnz", "avg_deg", "max_deg",
                 "deg_cv", "top1%_nnz_share"});
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        DegreeStats s = compute_degree_stats(a);
        table.new_row();
        table.add(spec.name);
        table.add_int(a.rows());
        table.add_int(a.nnz());
        table.add(s.avg_degree, 1);
        table.add_int(s.max_degree);
        table.add(s.degree_cv, 2);
        table.add(s.top1pct_nnz_share, 3);
        if (flags.get_bool("histograms") && !flags.get_bool("csv")) {
            std::printf("== %s: non-zeros-per-row histogram ==\n%s\n",
                        spec.name.c_str(),
                        degree_histogram(a).to_string().c_str());
        }
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nFig.1 takeaway: power-law graphs concentrate a large share of"
        "\nnon-zeros in a few evil rows (high max/avg, high CV), which is"
        "\nwhat breaks row-wise load balancing.\n");
    return 0;
}
