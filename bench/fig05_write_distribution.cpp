/**
 * @file
 * Figure 5: distribution of atomic vs. regular write operations to the
 * output matrix in MergePath-SpMM at dimension 16.
 *
 * Computed directly from the schedule census: one atomic commit per
 * partial-row contribution, one regular write per complete row.
 * Paper reference: structured (Type II) graphs are almost entirely
 * regular writes; email-Euall has far fewer atomics than email-Enron
 * despite similar nnz; high-average-degree graphs (Wiki-Vote, artist)
 * have high atomic shares.
 */
#include <cstdio>

#include "common.h"
#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 5: atomic vs regular output writes");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("cost", 0, "merge-path cost (0 = tuned default)");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    index_t cost = static_cast<index_t>(flags.get_int("cost"));
    if (cost <= 0)
        cost = default_merge_path_cost(dim);
    SimdPolicy policy;

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"type", "graph", "threads", "atomic_writes",
                 "regular_writes", "atomic_%", "atomic_nnz_%",
                 "split_rows"});
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        LaunchConfig launch =
            make_launch_config(a.rows(), a.nnz(), dim, cost, policy);
        MergePathSchedule sched =
            MergePathSchedule::build(a, launch.num_threads);
        ScheduleCensus c = sched.census(a);
        table.new_row();
        table.add(spec.type == GraphType::kPowerLaw ? "I" : "II");
        table.add(spec.name);
        table.add_int(launch.num_threads);
        table.add_int(c.atomic_commits);
        table.add_int(c.plain_row_writes);
        table.add(100.0 * c.atomic_write_fraction(), 1);
        table.add(100.0 * c.atomic_nnz /
                      std::max<int64_t>(c.atomic_nnz + c.plain_nnz, 1),
                  1);
        table.add_int(c.split_rows);
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nPaper reference: Type II graphs are almost all regular writes;"
        "\nemail-Euall has a much lower atomic share than email-Enron.\n");
    return 0;
}
