/**
 * @file
 * Wall-clock microbenchmarks (google-benchmark) of the portable CPU
 * kernel implementations: schedule construction, every SpMM kernel on
 * power-law and structured inputs, and a 2-layer GCN inference.
 * These measure the real multithreaded code paths; the paper's GPU
 * figures come from the fig* benches (SIMT model).
 */
#include <benchmark/benchmark.h>

#include <chrono>

#include "mps/core/microkernel.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/gcn/model.h"
#include "mps/kernels/registry.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/generate.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"

namespace {

using namespace mps;

const CsrMatrix &
powerlaw_graph()
{
    static CsrMatrix a = make_dataset("Citeseer");
    return a;
}

const CsrMatrix &
structured_graph_input()
{
    static CsrMatrix a = [] {
        StructuredParams p;
        p.nodes = 20000;
        p.target_nnz = 42000;
        p.max_degree = 6;
        p.seed = 3;
        return structured_graph(p);
    }();
    return a;
}

DenseMatrix
dense_input(index_t rows, index_t dim)
{
    DenseMatrix b(rows, dim);
    Pcg32 rng(7);
    b.fill_random(rng);
    return b;
}

void
BM_ScheduleBuild(benchmark::State &state)
{
    const CsrMatrix &a = powerlaw_graph();
    index_t threads = static_cast<index_t>(state.range(0));
    for (auto _ : state) {
        MergePathSchedule s = MergePathSchedule::build(a, threads);
        benchmark::DoNotOptimize(s.num_threads());
    }
    state.SetItemsProcessed(state.iterations() * threads);
}
BENCHMARK(BM_ScheduleBuild)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_SpmmKernel(benchmark::State &state, const std::string &kernel_name,
              bool structured)
{
    const CsrMatrix &a =
        structured ? structured_graph_input() : powerlaw_graph();
    const index_t dim = 16;
    DenseMatrix b = dense_input(a.cols(), dim);
    DenseMatrix c(a.rows(), dim);
    WorkStealPool pool(4);
    auto kernel = make_spmm_kernel(kernel_name);
    kernel->prepare(a, dim);
    for (auto _ : state) {
        kernel->run(a, b, c, pool);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz() * dim);
}

#define MPS_SPMM_BENCH(name)                                             \
    void BM_Spmm_##name##_PowerLaw(benchmark::State &s)                  \
    {                                                                    \
        BM_SpmmKernel(s, #name, false);                                  \
    }                                                                    \
    BENCHMARK(BM_Spmm_##name##_PowerLaw);                                \
    void BM_Spmm_##name##_Structured(benchmark::State &s)                \
    {                                                                    \
        BM_SpmmKernel(s, #name, true);                                   \
    }                                                                    \
    BENCHMARK(BM_Spmm_##name##_Structured)

MPS_SPMM_BENCH(reference);
MPS_SPMM_BENCH(row_split);
MPS_SPMM_BENCH(column_split);
MPS_SPMM_BENCH(gnnadvisor);
MPS_SPMM_BENCH(mergepath_serial);
MPS_SPMM_BENCH(mergepath);
MPS_SPMM_BENCH(adaptive);

/**
 * Scalar-vs-SIMD speedup of the row microkernel axpy (the SpMM hot
 * loop) per feature dimension. Each run times BOTH paths on identical
 * inputs and reports scalar_ns, simd_ns and speedup as counters, so
 * `--benchmark_format=json` carries the per-dim speedup table the
 * roadmap asks for. The timed loop itself runs the selected default
 * path; the counters come from a fixed-duration side measurement.
 */
void
BM_MicrokernelAxpy(benchmark::State &state)
{
    const index_t dim = static_cast<index_t>(state.range(0));
    const index_t rows = 256; // cycle rows so data stays in L1/L2
    DenseMatrix b = dense_input(rows, dim);
    const RowKernels &scalar =
        select_row_kernels(dim, MicrokernelPath::kScalar);
    const RowKernels &simd =
        microkernel_simd_compiled()
            ? select_row_kernels(dim, MicrokernelPath::kSimd)
            : scalar;
    value_t *acc = microkernel_scratch(dim);
    scalar.zero(acc, dim);

    auto time_path = [&](const RowKernels &rk) {
        // ~1e6 axpys per sample: long enough to swamp timer overhead.
        const int reps = 1000000 / rows;
        auto t0 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < reps; ++rep) {
            for (index_t r = 0; r < rows; ++r)
                rk.axpy(acc, 1.0009f, b.row(r), dim);
        }
        auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(acc);
        return std::chrono::duration<double, std::nano>(t1 - t0)
                   .count() /
               (static_cast<double>(reps) * rows);
    };

    for (auto _ : state) {
        for (index_t r = 0; r < rows; ++r)
            simd.axpy(acc, 1.0009f, b.row(r), dim);
        benchmark::DoNotOptimize(acc);
    }

    const double scalar_ns = time_path(scalar);
    const double simd_ns =
        microkernel_simd_compiled() ? time_path(simd) : scalar_ns;
    state.counters["scalar_ns"] = scalar_ns;
    state.counters["simd_ns"] = simd_ns;
    state.counters["speedup"] = scalar_ns / simd_ns;
    state.SetItemsProcessed(state.iterations() * rows * dim);
    state.SetLabel(simd.name);
}
BENCHMARK(BM_MicrokernelAxpy)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128);

/**
 * Mixed-precision axpy: the SpMM hot loop reading its operand row at
 * each storage width (f32 / bf16 / int8, fp32 accumulate throughout).
 * Args are {dim, StorageMode}. Counters carry the JSON row the roadmap
 * asks for: bytes_moved per axpy (operand row only — the bandwidth the
 * narrow storage actually cuts), GB/s of operand traffic at the
 * measured rate, and speedup_vs_f32 from a fixed-work side measurement
 * against the f32 kernel on the same data.
 */
void
BM_MicrokernelAxpyPrecision(benchmark::State &state)
{
    const index_t dim = static_cast<index_t>(state.range(0));
    const auto mode = static_cast<StorageMode>(state.range(1));
    const index_t rows = 256;
    DenseMatrix b = dense_input(rows, dim);
    b.quantize(mode);
    const RowKernels &rk = select_row_kernels(dim);
    value_t *acc = microkernel_scratch(dim);
    rk.zero(acc, dim);

    auto axpy_row = [&](StorageMode m, index_t r) {
        switch (m) {
        case StorageMode::kBf16:
            rk.axpy_bf16(acc, 1.0009f, b.row_bf16(r), dim);
            break;
        case StorageMode::kInt8:
            rk.axpy_int8(acc, 1.0009f, b.row_int8(r), b.quant_scale(r),
                         b.quant_zero(r), dim);
            break;
        case StorageMode::kF32:
            rk.axpy(acc, 1.0009f, b.row(r), dim);
            break;
        }
    };
    auto time_mode = [&](StorageMode m) {
        const int reps = 1000000 / rows;
        auto t0 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < reps; ++rep)
            for (index_t r = 0; r < rows; ++r)
                axpy_row(m, r);
        auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(acc);
        return std::chrono::duration<double, std::nano>(t1 - t0)
                   .count() /
               (static_cast<double>(reps) * rows);
    };

    for (auto _ : state) {
        for (index_t r = 0; r < rows; ++r)
            axpy_row(mode, r);
        benchmark::DoNotOptimize(acc);
    }

    const double f32_ns = time_mode(StorageMode::kF32);
    const double mode_ns =
        mode == StorageMode::kF32 ? f32_ns : time_mode(mode);
    const double bytes_moved =
        static_cast<double>(dim) * storage_elem_bytes(mode);
    state.counters["bytes_moved"] = bytes_moved;
    state.counters["GB/s"] = bytes_moved / mode_ns; // ns -> GB/s exactly
    state.counters["speedup_vs_f32"] = f32_ns / mode_ns;
    state.SetItemsProcessed(state.iterations() * rows * dim);
    state.SetLabel(storage_mode_name(mode));
}
BENCHMARK(BM_MicrokernelAxpyPrecision)
    ->ArgsProduct({{32, 64, 128, 256}, {0, 1, 2}});

void
BM_GcnTwoLayerInference(benchmark::State &state)
{
    CsrMatrix a = make_dataset("Citeseer");
    a.normalize_gcn();
    DenseMatrix x = dense_input(a.rows(), 64);
    WorkStealPool pool(4);
    GcnModel model = GcnModel::two_layer(64, 16, 8, 1, "mergepath");
    for (auto _ : state) {
        DenseMatrix out = model.infer(a, x, pool);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_GcnTwoLayerInference);

} // namespace

BENCHMARK_MAIN();
