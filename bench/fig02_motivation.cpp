/**
 * @file
 * Figure 2: motivation — kernel completion times of the AWB-GCN
 * hardware accelerator versus GPU implementations (row-splitting,
 * GNNAdvisor, merge-path with serial fix-up) on four representative
 * power-law graphs. Nell uses a hidden dimension of 64, the others 16,
 * exactly as in the paper. The proposed MergePath-SpMM is shown as an
 * extra column for reference.
 *
 * Expected shape (paper): AWB-GCN wins the small Cora/Citeseer graphs;
 * GNNAdvisor wins Pubmed and wins Nell by ~6x over AWB-GCN; the
 * merge-path serial baseline is the worst on the small graphs.
 */
#include <cstdio>

#include "common.h"
#include "mps/accel/awb_gcn.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 2: AWB-GCN vs GPU kernels (modelled)");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    GpuConfig gpu = GpuConfig::rtx6000();
    AwbGcnConfig awb;

    struct Case
    {
        const char *graph;
        index_t dim;
    };
    const Case cases[] = {
        {"Cora", 16}, {"Citeseer", 16}, {"Pubmed", 16}, {"Nell", 64}};

    Table table({"graph", "dim", "awb_gcn_us", "row_split_us",
                 "gnnadvisor_us", "mergepath_serial_us",
                 "mergepath_spmm_us", "best"});
    for (const Case &c : cases) {
        CsrMatrix a = make_dataset(c.graph);
        AwbGcnResult awb_r = simulate_awb_gcn(a, c.dim, awb);
        double rs = bench::model_kernel_us(a, c.dim, "row_split", gpu);
        double ga = bench::model_kernel_us(a, c.dim, "gnnadvisor", gpu);
        double ms =
            bench::model_kernel_us(a, c.dim, "mergepath_serial", gpu);
        double mp = bench::model_kernel_us(a, c.dim, "mergepath", gpu);

        const char *best = "awb_gcn";
        double best_t = awb_r.microseconds;
        auto consider = [&](const char *name, double t) {
            if (t < best_t) {
                best = name;
                best_t = t;
            }
        };
        consider("row_split", rs);
        consider("gnnadvisor", ga);
        consider("mergepath_serial", ms);
        consider("mergepath_spmm", mp);

        table.new_row();
        table.add(c.graph);
        table.add_int(c.dim);
        table.add(awb_r.microseconds, 2);
        table.add(rs, 2);
        table.add(ga, 2);
        table.add(ms, 2);
        table.add(mp, 2);
        table.add(best);
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nPaper reference points: AWB-GCN 4.3us (Cora), 6.3us (Citeseer);"
        "\nGNNAdvisor ~2x slower than AWB-GCN on Cora/Citeseer, faster on"
        "\nPubmed, ~6x faster on Nell; merge-path serial worst on small"
        "\ngraphs.\n");
    return 0;
}
