/**
 * @file
 * Figure 4: speedup of cuSPARSE, GNNAdvisor-opt and MergePath-SpMM
 * over the GNNAdvisor baseline at the default dimension size of 16,
 * across all 23 evaluation graphs, with geometric means.
 *
 * Paper reference points: MergePath-SpMM 1.85x geomean over GNNAdvisor
 * and ~1.31x over GNNAdvisor-opt; GNNAdvisor-opt 1.41x over
 * GNNAdvisor; cuSPARSE loses on Type I (power-law) and wins on Type II
 * (structured) graphs.
 */
#include <cstdio>

#include "common.h"
#include "mps/util/cli.h"
#include "mps/util/stats.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 4: speedups over GNNAdvisor at dim 16");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("cost", 0, "merge-path cost (0 = tuned default)");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    GpuConfig gpu = GpuConfig::rtx6000();
    bench::ModelOptions mp_opts;
    mp_opts.cost = static_cast<index_t>(flags.get_int("cost"));

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"type", "graph", "cusparse", "gnnadvisor_opt",
                 "mergepath_spmm"});
    std::vector<double> sp_cus, sp_opt, sp_mp;
    std::vector<double> sp_mp_type1, sp_mp_type2;

    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        double base = bench::model_kernel_us(a, dim, "gnnadvisor", gpu);
        double cus = bench::model_kernel_us(a, dim, "cusparse", gpu);
        double opt =
            bench::model_kernel_us(a, dim, "gnnadvisor_opt", gpu);
        double mp =
            bench::model_kernel_us(a, dim, "mergepath", gpu, mp_opts);

        sp_cus.push_back(base / cus);
        sp_opt.push_back(base / opt);
        sp_mp.push_back(base / mp);
        (spec.type == GraphType::kPowerLaw ? sp_mp_type1 : sp_mp_type2)
            .push_back(base / mp);

        table.new_row();
        table.add(spec.type == GraphType::kPowerLaw ? "I" : "II");
        table.add(spec.name);
        table.add(base / cus, 2);
        table.add(base / opt, 2);
        table.add(base / mp, 2);
    }
    table.print(flags.get_bool("csv"));

    std::printf("\ngeomean speedups over GNNAdvisor (dim %d):\n",
                static_cast<int>(dim));
    std::printf("  cuSPARSE        %.2fx\n", geomean(sp_cus));
    std::printf("  GNNAdvisor-opt  %.2fx   (paper: 1.41x)\n",
                geomean(sp_opt));
    std::printf("  MergePath-SpMM  %.2fx   (paper: 1.85x)\n",
                geomean(sp_mp));
    std::printf("  MergePath-SpMM vs GNNAdvisor-opt: %.2fx (paper: 1.31x)\n",
                geomean(sp_mp) / geomean(sp_opt));
    if (!sp_mp_type1.empty() && !sp_mp_type2.empty()) {
        std::printf("  MergePath-SpMM geomean: Type I %.2fx, Type II %.2fx\n",
                    geomean(sp_mp_type1), geomean(sp_mp_type2));
    }
    return 0;
}
