/**
 * @file
 * Figure 7: speedup at different dimension sizes, normalized to
 * GNNAdvisor at dimension 128 (per graph, then geomean).
 *
 * Paper reference: GNNAdvisor saturates at ~2x below dim 32 (it cannot
 * pack lanes); GNNAdvisor-opt reaches ~9x at dim 2; MergePath-SpMM
 * reaches ~27.6x at dim 2 and leads at every dimension.
 */
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common.h"
#include "mps/kernels/mergepath_kernel.h"
#include "mps/util/cli.h"
#include "mps/util/json.h"
#include "mps/util/rng.h"
#include "mps/util/stats.h"
#include "mps/util/table.h"
#include "mps/util/timer.h"
#include "mps/util/work_steal_pool.h"

using namespace mps;

namespace {

/** One measured (dim, storage mode) aggregate over the graph set. */
struct PrecisionRow
{
    index_t dim = 0;
    StorageMode mode = StorageMode::kF32;
    double ms = 0.0;
    double bytes_moved = 0.0; ///< operand gather bytes per sweep
    double gbps = 0.0;
    double speedup_vs_f32 = 0.0;
};

/**
 * Measured mixed-precision section: the real mergepath kernel per
 * storage width, wall-clock, not the SIMT model the figure rows use.
 * bytes_moved counts the operand rows the traversal gathers
 * (nnz * dim * elem_bytes summed over graphs) — the traffic the
 * reduced-width storage actually divides.
 */
std::vector<PrecisionRow>
bench_precision(const std::vector<DatasetSpec> &specs,
                const std::vector<index_t> &dims, int reps,
                WorkStealPool &pool)
{
    const StorageMode modes[] = {StorageMode::kF32, StorageMode::kBf16,
                                 StorageMode::kInt8};
    std::vector<PrecisionRow> rows;
    for (index_t dim : dims) {
        double f32_ms = 0.0;
        for (StorageMode mode : modes) {
            PrecisionRow row;
            row.dim = dim;
            row.mode = mode;
            for (const auto &spec : specs) {
                CsrMatrix a = make_dataset(spec);
                DenseMatrix b(a.cols(), dim);
                Pcg32 rng(7);
                b.fill_random(rng);
                b.quantize(mode);
                DenseMatrix c(a.rows(), dim);
                MergePathSpmm kernel;
                kernel.prepare(a, dim);
                kernel.run(a, b, c, pool); // warm
                double best = 1e30;
                for (int r = 0; r < reps; ++r) {
                    Timer t;
                    kernel.run(a, b, c, pool);
                    best = std::min(best, t.elapsed_ms());
                }
                row.ms += best;
                row.bytes_moved += static_cast<double>(a.nnz()) * dim *
                                   storage_elem_bytes(mode);
            }
            row.gbps = row.bytes_moved / (row.ms * 1e6);
            if (mode == StorageMode::kF32)
                f32_ms = row.ms;
            row.speedup_vs_f32 = f32_ms / row.ms;
            rows.push_back(row);
        }
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 7: dimension-size scaling");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.add_bool("precision", false,
                   "measure mergepath at f32/bf16/int8 per dimension");
    flags.add_int("reps", 3, "timing repetitions for --precision");
    flags.add_int("threads", 0,
                  "pool threads for --precision (0 = hw)");
    flags.add_string("json", "",
                     "write --precision rows to this JSON file");
    flags.parse(argc, argv);

    GpuConfig gpu = GpuConfig::rtx6000();
    const index_t dims[] = {128, 64, 32, 16, 8, 4, 2};
    const char *kernels[] = {"gnnadvisor", "gnnadvisor_opt", "mergepath"};

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    // speedups[kernel][dim] = geomean over graphs of base128 / time.
    Table table({"dim", "gnnadvisor", "gnnadvisor_opt",
                 "mergepath_spmm"});

    // Per-graph baseline: GNNAdvisor at dim 128.
    std::vector<CsrMatrix> graphs;
    std::vector<double> base128;
    for (const auto &spec : specs) {
        graphs.push_back(make_dataset(spec));
        base128.push_back(bench::model_kernel_us(graphs.back(), 128,
                                                 "gnnadvisor", gpu));
    }

    for (index_t dim : dims) {
        table.new_row();
        table.add_int(dim);
        for (const char *kernel : kernels) {
            std::vector<double> speedups;
            for (size_t g = 0; g < graphs.size(); ++g) {
                double t =
                    bench::model_kernel_us(graphs[g], dim, kernel, gpu);
                speedups.push_back(base128[g] / t);
            }
            table.add(geomean(speedups), 2);
        }
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nAll values normalized to GNNAdvisor at dim 128 (geomean over"
        " %zu graphs).\nPaper reference at dim 2: GNNAdvisor ~2x,"
        " GNNAdvisor-opt ~9x, MergePath-SpMM ~27.6x.\n",
        graphs.size());

    if (flags.get_bool("precision")) {
        const int reps = static_cast<int>(flags.get_int("reps"));
        unsigned threads =
            static_cast<unsigned>(flags.get_int("threads"));
        if (threads == 0)
            threads = std::max(1u, std::thread::hardware_concurrency());
        WorkStealPool pool(threads);
        const std::vector<index_t> pdims = {128, 64, 32};
        std::vector<PrecisionRow> rows =
            bench_precision(specs, pdims, reps, pool);

        Table pt({"dim", "storage", "ms", "bytes_moved", "GB/s",
                  "speedup_vs_f32"});
        for (const auto &row : rows) {
            pt.new_row();
            pt.add_int(row.dim);
            pt.add(storage_mode_name(row.mode));
            pt.add(row.ms, 3);
            pt.add(row.bytes_moved, 0);
            pt.add(row.gbps, 2);
            pt.add(row.speedup_vs_f32, 2);
        }
        std::printf("\nMeasured mergepath per operand storage width "
                    "(wall-clock, best of %d, %u threads):\n",
                    reps, threads);
        pt.print(flags.get_bool("csv"));

        const std::string json_path = flags.get_string("json");
        if (!json_path.empty()) {
            JsonWriter w;
            w.begin_object();
            w.key("reps").value(reps);
            w.key("threads").value(static_cast<int64_t>(threads));
            w.key("rows").begin_array();
            for (const auto &row : rows) {
                w.begin_object();
                w.key("dim").value(static_cast<int64_t>(row.dim));
                w.key("storage").value(storage_mode_name(row.mode));
                w.key("ms").value(row.ms);
                w.key("bytes_moved").value(row.bytes_moved);
                w.key("GB/s").value(row.gbps);
                w.key("speedup_vs_f32").value(row.speedup_vs_f32);
                w.end_object();
            }
            w.end_array();
            w.end_object();
            std::ofstream out(json_path);
            out << w.str() << "\n";
            std::printf("wrote %s\n", json_path.c_str());
        }
    }
    return 0;
}
