/**
 * @file
 * Figure 7: speedup at different dimension sizes, normalized to
 * GNNAdvisor at dimension 128 (per graph, then geomean).
 *
 * Paper reference: GNNAdvisor saturates at ~2x below dim 32 (it cannot
 * pack lanes); GNNAdvisor-opt reaches ~9x at dim 2; MergePath-SpMM
 * reaches ~27.6x at dim 2 and leads at every dimension.
 */
#include <cstdio>

#include "common.h"
#include "mps/util/cli.h"
#include "mps/util/stats.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 7: dimension-size scaling");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    GpuConfig gpu = GpuConfig::rtx6000();
    const index_t dims[] = {128, 64, 32, 16, 8, 4, 2};
    const char *kernels[] = {"gnnadvisor", "gnnadvisor_opt", "mergepath"};

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    // speedups[kernel][dim] = geomean over graphs of base128 / time.
    Table table({"dim", "gnnadvisor", "gnnadvisor_opt",
                 "mergepath_spmm"});

    // Per-graph baseline: GNNAdvisor at dim 128.
    std::vector<CsrMatrix> graphs;
    std::vector<double> base128;
    for (const auto &spec : specs) {
        graphs.push_back(make_dataset(spec));
        base128.push_back(bench::model_kernel_us(graphs.back(), 128,
                                                 "gnnadvisor", gpu));
    }

    for (index_t dim : dims) {
        table.new_row();
        table.add_int(dim);
        for (const char *kernel : kernels) {
            std::vector<double> speedups;
            for (size_t g = 0; g < graphs.size(); ++g) {
                double t =
                    bench::model_kernel_us(graphs[g], dim, kernel, gpu);
                speedups.push_back(base128[g] / t);
            }
            table.add(geomean(speedups), 2);
        }
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nAll values normalized to GNNAdvisor at dim 128 (geomean over"
        " %zu graphs).\nPaper reference at dim 2: GNNAdvisor ~2x,"
        " GNNAdvisor-opt ~9x, MergePath-SpMM ~27.6x.\n",
        graphs.size());
    return 0;
}
