#include "common.h"

#include <algorithm>
#include <sstream>

#include "mps/core/policy.h"
#include "mps/util/log.h"

namespace mps::bench {

namespace {

/** Tuned merge-path-serial baseline: pick the best thread count. */
GpuKernelResult
best_serial_fixup(const CsrMatrix &a, index_t dim,
                  const GpuConfig &config)
{
    GpuKernelResult best;
    best.cycles = -1.0;
    for (index_t threads : {64, 128, 256, 512, 1024, 2048, 4096}) {
        KernelWorkload w =
            build_mergepath_serial_workload(a, dim, threads, config);
        GpuKernelResult r = simulate_gpu(w, config);
        if (best.cycles < 0.0 || r.cycles < best.cycles)
            best = r;
    }
    return best;
}

} // namespace

GpuKernelResult
model_kernel(const CsrMatrix &a, index_t dim, const std::string &kernel,
             const GpuConfig &config, const ModelOptions &options)
{
    if (kernel == "mergepath") {
        index_t cost = options.cost > 0 ? options.cost
                                        : default_merge_path_cost(dim);
        return simulate_gpu(build_mergepath_workload(a, dim, cost, config),
                            config);
    }
    if (kernel == "gnnadvisor") {
        return simulate_gpu(
            build_gnnadvisor_workload(a, dim, options.ng_size,
                                      GnnAdvisorVariant::kBaseline,
                                      config),
            config);
    }
    if (kernel == "gnnadvisor_opt") {
        return simulate_gpu(
            build_gnnadvisor_workload(a, dim, options.ng_size,
                                      GnnAdvisorVariant::kOpt, config),
            config);
    }
    if (kernel == "row_split") {
        return simulate_gpu(build_rowsplit_workload(a, dim, 0, config),
                            config);
    }
    if (kernel == "mergepath_serial")
        return best_serial_fixup(a, dim, config);
    if (kernel == "cusparse") {
        return simulate_gpu(build_cusparse_workload(a, dim, config),
                            config);
    }
    fatal("unknown SIMT kernel '" + kernel + "'");
}

double
model_kernel_us(const CsrMatrix &a, index_t dim, const std::string &kernel,
                const GpuConfig &config, const ModelOptions &options)
{
    return model_kernel(a, dim, kernel, config, options).microseconds;
}

std::vector<DatasetSpec>
select_graphs(const std::string &selector)
{
    const auto &all = all_dataset_specs();
    std::vector<DatasetSpec> out;
    if (selector == "all") {
        out = all;
    } else if (selector == "type1") {
        for (const auto &s : all) {
            if (s.type == GraphType::kPowerLaw)
                out.push_back(s);
        }
    } else if (selector == "type2") {
        for (const auto &s : all) {
            if (s.type == GraphType::kStructured)
                out.push_back(s);
        }
    } else if (selector == "small") {
        for (const auto &s : all) {
            if (s.nnz <= 1500000)
                out.push_back(s);
        }
    } else {
        std::stringstream ss(selector);
        std::string name;
        while (std::getline(ss, name, ','))
            out.push_back(find_dataset_spec(name));
    }
    MPS_CHECK(!out.empty(), "graph selector matched nothing: ", selector);
    return out;
}

} // namespace mps::bench
