/**
 * @file
 * Dynamic-graph churn benchmark, two parts:
 *
 * 1. Schedule maintenance: replay one update stream through both
 *    policies and compare the schedule work each pays per update.
 *    Incremental: the overlay absorbs updates and a repair_schedule()
 *    + dirty-range re-census runs only at each lazy compaction.
 *    Rebuild-every-update: each update materializes a new base, so
 *    each one costs a fresh MergePathSchedule::build() + full census.
 *    Churn follows the temporal-graph pattern (new edges concentrate
 *    on the most recently added nodes, --hot-fraction of the tail), so
 *    the merge-path prefix stays clean and repair touches only the
 *    dirty suffix.
 *
 * 2. Serving under churn: closed-loop client throughput and latency
 *    with an updater thread landing --churn-pct %% of the graph's
 *    edges per second, comparing the incremental policy (overlay +
 *    lazy compaction + schedule repair) against rebuild-per-update and
 *    against the no-churn baseline.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "mps/core/schedule.h"
#include "mps/core/schedule_cache.h"
#include "mps/gcn/layer.h"
#include "mps/serve/server.h"
#include "mps/sparse/delta_csr.h"
#include "mps/sparse/generate.h"
#include "mps/util/cli.h"
#include "mps/util/metrics.h"
#include "mps/util/rng.h"
#include "mps/util/table.h"
#include "mps/util/timer.h"

using namespace mps;

namespace {

/**
 * Edge batch for one update: upserts with rows drawn from the hot
 * tail [hot_begin, rows) and uniform random columns — mostly inserts,
 * occasionally value changes when a (row, col) already exists.
 */
GraphDelta
churn_delta(Pcg32 &rng, index_t rows, index_t cols, index_t hot_begin,
            int edges)
{
    GraphDelta delta;
    delta.upserts.reserve(static_cast<size_t>(edges));
    const auto hot_span = static_cast<uint32_t>(rows - hot_begin);
    for (int i = 0; i < edges; ++i) {
        EdgeUpdate e;
        e.row = hot_begin +
                static_cast<index_t>(rng.next_below(hot_span));
        e.col = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(cols)));
        e.value = rng.next_float(0.01f, 1.0f);
        delta.upserts.push_back(e);
    }
    return delta;
}

struct RepairBenchResult
{
    int updates = 0;
    int compactions = 0; ///< lazy compactions on the incremental side
    int fallbacks = 0;   ///< repairs that degenerated to a rebuild
    /** Incremental policy: total repair + dirty-range census time. */
    double repair_total_us = 0.0;
    /** Rebuild policy: total fresh build + full census time (one per
     *  update — every update swaps the base and invalidates the
     *  fingerprint, so the next batch rebuilds). */
    double rebuild_total_us = 0.0;

    double repair_per_update_us() const
    {
        return repair_total_us / std::max(1, updates);
    }
    double rebuild_per_update_us() const
    {
        return rebuild_total_us / std::max(1, updates);
    }
    double repair_per_compaction_us() const
    {
        return repair_total_us / std::max(1, compactions);
    }
};

/**
 * Replay the same update stream through both policies and time ONLY
 * the schedule maintenance each one pays. Incremental: overlay absorbs
 * updates, a repair (+ dirty-range re-census) runs at each lazy
 * compaction. Rebuild-every-update: each update materializes a new
 * base, so each update costs a full schedule build + census.
 */
RepairBenchResult
bench_schedule_repair(const CsrMatrix &graph, index_t threads,
                      index_t hot_begin, int update_edges,
                      int num_updates, double compact_ratio,
                      uint64_t seed)
{
    Pcg32 rng(seed);
    DeltaCsr dynamic(graph);
    if (compact_ratio > 0.0)
        dynamic.set_compact_ratio(compact_ratio);
    DeltaCsr eager(graph);
    MergePathSchedule sched = MergePathSchedule::build(graph, threads);
    RepairBenchResult out;
    out.updates = num_updates;
    for (int u = 0; u < num_updates; ++u) {
        GraphDelta delta = churn_delta(rng, graph.rows(), graph.cols(),
                                       hot_begin, update_edges);
        dynamic.apply(delta);
        if (dynamic.needs_compaction()) {
            DeltaCsr::CompactResult cr = dynamic.compact();
            Timer repair_timer;
            ScheduleRepair rep = repair_schedule(
                sched, *cr.old_base, *cr.new_base, cr.first_dirty_row);
            rep.schedule.census_part(*cr.new_base, rep.dirty_begin,
                                     rep.dirty_end);
            out.repair_total_us += repair_timer.elapsed_us();
            ++out.compactions;
            if (rep.rebuilt)
                ++out.fallbacks;
            sched = std::move(rep.schedule);
        }

        eager.apply(delta);
        DeltaCsr::CompactResult cr = eager.compact();
        Timer rebuild_timer;
        MergePathSchedule fresh =
            MergePathSchedule::build(*cr.new_base, threads);
        fresh.census(*cr.new_base);
        out.rebuild_total_us += rebuild_timer.elapsed_us();
    }
    return out;
}

struct ServePoint
{
    double rps = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    int64_t updates = 0;
    int64_t compactions = 0;
    int64_t sched_builds = 0;
    int64_t sched_repairs = 0;
};

ServePoint
run_serve_point(const CsrMatrix &graph,
                const std::vector<GcnLayer> &layers,
                const DenseMatrix &features,
                serve::GraphUpdatePolicy policy, double churn_eps,
                index_t hot_begin, int update_hz, int clients,
                int requests, unsigned workers)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    const int64_t builds_before =
        metrics.counter_value("schedule.builds");
    const int64_t repairs_before =
        metrics.counter_value("schedule.repairs");

    serve::ServeConfig cfg;
    cfg.queue_capacity = 4096;
    cfg.num_workers = workers;
    cfg.batch.max_batch = 8;
    cfg.batch.max_delay_us = 2000;
    cfg.overflow = serve::OverflowPolicy::kBlock;
    cfg.update_policy = policy;
    serve::Server server(cfg);
    const uint64_t gid = server.register_graph(graph, layers);
    server.infer(gid, features); // warm-up + first schedule build

    std::atomic<bool> stop{false};
    std::thread updater;
    if (churn_eps > 0.0) {
        const int batch_edges = std::max(
            1, static_cast<int>(churn_eps /
                                std::max(1, update_hz)));
        const auto interval = std::chrono::microseconds(
            1000000 / std::max(1, update_hz));
        updater = std::thread([&server, &stop, gid, batch_edges,
                               interval, hot_begin, &graph] {
            Pcg32 rng(1234);
            while (!stop.load(std::memory_order_acquire)) {
                server.update_graph(
                    gid, churn_delta(rng, graph.rows(), graph.cols(),
                                     hot_begin, batch_edges));
                std::this_thread::sleep_for(interval);
            }
        });
    }

    std::atomic<int64_t> ok{0};
    Timer wall;
    std::vector<std::thread> pumps;
    pumps.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        pumps.emplace_back([&server, &features, &ok, requests, gid] {
            for (int i = 0; i < requests; ++i) {
                DenseMatrix x = features;
                if (server.infer(gid, std::move(x)).ok())
                    ok.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : pumps)
        t.join();
    const double wall_ms = wall.elapsed_ms();
    stop.store(true, std::memory_order_release);
    if (updater.joinable())
        updater.join();
    server.shutdown();
    serve::ServerStats st = server.stats();

    ServePoint point;
    point.rps = wall_ms <= 0.0 ? 0.0
                               : static_cast<double>(ok.load()) * 1e3 /
                                     wall_ms;
    point.p50 = st.latency_ms.p50;
    point.p99 = st.latency_ms.p99;
    point.updates = st.graph_updates;
    point.compactions = st.graph_compactions;
    point.sched_builds =
        metrics.counter_value("schedule.builds") - builds_before;
    point.sched_repairs =
        metrics.counter_value("schedule.repairs") - repairs_before;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("dynamic-graph churn: incremental schedule repair"
                     " vs rebuild, and serving throughput under edge"
                     " updates");
    flags.add_int("nodes", 500000, "power-law graph nodes");
    flags.add_int("avg-degree", 8, "average degree");
    flags.add_int("max-degree", 1024, "maximum row degree");
    flags.add_int("threads", 256, "merge-path threads per schedule");
    flags.add_int("updates", 150,
                  "repair-vs-rebuild update batches to replay");
    flags.add_int("update-edges", 0,
                  "edges per update batch (0 = churn-pct/update-hz"
                  " share of nnz, matching the serve phase)");
    flags.add_double("compact-ratio", 0.02,
                     "delta fraction that triggers lazy compaction in"
                     " part 1 (0 = library default)");
    flags.add_double("hot-fraction", 0.05,
                     "fraction of tail rows receiving churn");
    flags.add_double("churn-pct", 1.0,
                     "serve-phase churn: %% of nnz mutated per second");
    flags.add_int("update-hz", 10, "update_graph batches per second");
    flags.add_int("feat", 8, "input feature dimension");
    flags.add_int("hidden", 4, "hidden layer width");
    flags.add_int("clients", 4, "closed-loop client threads");
    flags.add_int("requests", 24, "requests per client per point");
    flags.add_int("workers", 2, "server worker threads");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    PowerLawParams p;
    p.nodes = static_cast<index_t>(flags.get_int("nodes"));
    p.target_nnz =
        p.nodes * static_cast<index_t>(flags.get_int("avg-degree"));
    p.max_degree = static_cast<index_t>(flags.get_int("max-degree"));
    p.seed = 7;
    p.value_mode = ValueMode::kGcnNormalized;
    CsrMatrix graph = power_law_graph(p);
    std::printf("# graph: %d nodes, %d nnz\n", graph.rows(),
                graph.nnz());

    const double hot_fraction =
        std::clamp(flags.get_double("hot-fraction"), 1e-4, 1.0);
    const index_t hot_begin = static_cast<index_t>(
        static_cast<double>(graph.rows()) * (1.0 - hot_fraction));
    const bool csv = flags.get_bool("csv");

    // --- Part 1: schedule maintenance per update --------------------
    const int update_hz = static_cast<int>(flags.get_int("update-hz"));
    const double churn_eps = flags.get_double("churn-pct") / 100.0 *
                             static_cast<double>(graph.nnz());
    int update_edges = static_cast<int>(flags.get_int("update-edges"));
    if (update_edges <= 0)
        update_edges = std::max(
            1, static_cast<int>(churn_eps / std::max(1, update_hz)));
    const index_t threads =
        static_cast<index_t>(flags.get_int("threads"));
    RepairBenchResult rb = bench_schedule_repair(
        graph, threads, hot_begin, update_edges,
        static_cast<int>(flags.get_int("updates")),
        flags.get_double("compact-ratio"), 99);

    Table repair_table({"threads", "update_edges", "updates",
                        "compactions", "repair_us_per_compaction",
                        "rebuild_us_per_update", "per_update_speedup",
                        "fallbacks"});
    repair_table.new_row();
    repair_table.add_int(threads);
    repair_table.add_int(update_edges);
    repair_table.add_int(rb.updates);
    repair_table.add_int(rb.compactions);
    repair_table.add(rb.repair_per_compaction_us(), 1);
    repair_table.add(rb.rebuild_per_update_us(), 1);
    repair_table.add(rb.rebuild_per_update_us() /
                         std::max(1e-9, rb.repair_per_update_us()),
                     1);
    repair_table.add_int(rb.fallbacks);
    repair_table.print(csv);

    // --- Part 2: serving throughput under churn --------------------
    const index_t feat = static_cast<index_t>(flags.get_int("feat"));
    const index_t hidden =
        static_cast<index_t>(flags.get_int("hidden"));
    std::vector<GcnLayer> layers;
    layers.emplace_back(random_layer_weights(feat, hidden, 11),
                        Activation::kRelu);
    layers.emplace_back(random_layer_weights(hidden, hidden, 13),
                        Activation::kNone);
    DenseMatrix features(graph.rows(), feat);
    Pcg32 rng(3);
    features.fill_random(rng);

    MetricsRegistry::global().set_enabled(true);
    const int clients = static_cast<int>(flags.get_int("clients"));
    const int requests = static_cast<int>(flags.get_int("requests"));
    const unsigned workers =
        static_cast<unsigned>(flags.get_int("workers"));

    ServePoint baseline = run_serve_point(
        graph, layers, features, serve::GraphUpdatePolicy::kIncremental,
        0.0, hot_begin, update_hz, clients, requests, workers);
    ServePoint incremental = run_serve_point(
        graph, layers, features, serve::GraphUpdatePolicy::kIncremental,
        churn_eps, hot_begin, update_hz, clients, requests, workers);
    ServePoint rebuild = run_serve_point(
        graph, layers, features,
        serve::GraphUpdatePolicy::kRebuildEveryUpdate, churn_eps,
        hot_begin, update_hz, clients, requests, workers);
    MetricsRegistry::global().set_enabled(false);

    Table serve_table({"policy", "churn_eps", "rps", "p50_ms", "p99_ms",
                       "updates", "compactions", "sched_builds",
                       "sched_repairs"});
    const auto add_row = [&serve_table, churn_eps](
                             const char *name, const ServePoint &pt,
                             bool churned) {
        serve_table.new_row();
        serve_table.add(std::string(name));
        serve_table.add(churned ? churn_eps : 0.0, 0);
        serve_table.add(pt.rps, 1);
        serve_table.add(pt.p50, 3);
        serve_table.add(pt.p99, 3);
        serve_table.add_int(pt.updates);
        serve_table.add_int(pt.compactions);
        serve_table.add_int(pt.sched_builds);
        serve_table.add_int(pt.sched_repairs);
    };
    add_row("no-churn", baseline, false);
    add_row("incremental", incremental, true);
    add_row("rebuild-every-update", rebuild, true);
    serve_table.print(csv);

    std::printf(
        "# schedule maintenance: incremental repair %.1fx cheaper per"
        " update than rebuild-every-update (%d compactions over %d"
        " updates, %d fallbacks; %.1f us/compaction repair vs %.1f"
        " us/update rebuild)\n",
        rb.rebuild_per_update_us() /
            std::max(1e-9, rb.repair_per_update_us()),
        rb.compactions, rb.updates, rb.fallbacks,
        rb.repair_per_compaction_us(), rb.rebuild_per_update_us());
    std::printf(
        "# serve under churn: incremental %.0f%% of no-churn baseline,"
        " rebuild-every-update %.0f%%\n",
        100.0 * incremental.rps / std::max(1e-9, baseline.rps),
        100.0 * rebuild.rps / std::max(1e-9, baseline.rps));
    return 0;
}
