/**
 * @file
 * Hybrid vs unified accelerator engines (the paper's Section I
 * motivation): a HyGCN-style two-engine pipeline leaves one engine
 * under-utilized depending on the input graph's aggregation /
 * combination work ratio, while a unified array (AWB-GCN-style)
 * executes both phases on the same MACs.
 *
 * For each graph the table shows the hybrid design's per-engine
 * utilization and the unified design's time on the same full layer
 * A x (X x W) with f = 64 input features and d = 16 hidden units.
 */
#include <cstdio>

#include "common.h"
#include "mps/accel/awb_gcn.h"
#include "mps/accel/hygcn.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("hybrid (HyGCN-like) vs unified (AWB-GCN-like)");
    flags.add_string("graphs",
                     "Citeseer,Pubmed,Wiki-Vote,artist,email-Euall,"
                     "PROTEINS_full",
                     "graph selector");
    flags.add_int("features", 64, "input feature width f");
    flags.add_int("dim", 16, "hidden width d");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    const index_t f = static_cast<index_t>(flags.get_int("features"));
    const index_t d = static_cast<index_t>(flags.get_int("dim"));
    HyGcnConfig hybrid;
    AwbGcnConfig unified;

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"graph", "avg_deg", "hybrid_us", "agg_util_%",
                 "comb_util_%", "unified_us", "unified_wins"});
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        HyGcnResult h = simulate_hygcn(a, f, d, hybrid);
        // Unified array: the A x XW phase (modelled with the tuner)
        // plus the dense X x W phase on the same 4096 MACs.
        AwbGcnResult agg = simulate_awb_gcn(a, d, unified);
        double comb_cycles = static_cast<double>(a.rows()) * f * d /
                             (unified.num_pes *
                              unified.macs_per_pe_cycle);
        double unified_us = agg.microseconds +
                            comb_cycles / (unified.clock_ghz * 1e3);
        table.new_row();
        table.add(spec.name);
        table.add(spec.avg_degree, 1);
        table.add(h.microseconds, 1);
        table.add(100.0 * h.agg_utilization, 1);
        table.add(100.0 * h.comb_utilization, 1);
        table.add(unified_us, 1);
        table.add(unified_us < h.microseconds ? "yes" : "no");
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nThe hybrid design's idle engine (whichever utilization is"
        " low) is\ndetermined by the graph's average degree relative to"
        " f — the paper's\nargument for unified SpMM hardware.\n");
    return 0;
}
