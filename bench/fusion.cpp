/**
 * @file
 * Operator-fusion study: the panel-streaming fused pipeline
 * (mps/core/fusion.h) against the classic unfused
 * GEMM -> materialize XW -> SpMM -> activation execution, on a 2-layer
 * GCN (f=32 -> hidden=128 ReLU -> classes=32) over a power-law graph
 * whose n x d temporaries exceed the caches.
 *
 * Both paths are timed exactly as they ship: the unfused side
 * replays GcnLayer::forward / GcnModel::infer's classic loop —
 * allocating and zero-filling each n x d temporary per call, the
 * materialization tax MPS_FUSE=0 actually pays — and the fused side
 * replays the plan construction, panel buffers and streaming chain of
 * GcnModel::fused_infer. Three timed comparisons, best-of-reps each:
 *
 *  - layer 1 (d = hidden): unfused alloc-XW + dense_gemm +
 *    locality-tuned SpMM + apply_activation vs one
 *    FusedLayerPlan::run() with the ReLU folded into the commit sweep;
 *  - layer 2 (d = classes): same shape study on the narrow layer;
 *  - end-to-end: the full unfused 2-layer forward vs the streaming
 *    pipeline (layer 1's output panels rank-update layer 2's
 *    combination while cache-resident — neither XW1, H1 nor the full
 *    XW2 write/read round trip is paid).
 *
 * Alongside wall time a DRAM-traffic proxy is reported: the bytes the
 * n x d temporaries stream through memory in each path, counting one
 * compulsory trip per produce/consume of a matrix that cannot be
 * cache-resident and zero for panels that are (panel residency is what
 * auto_fused_tile_d guarantees). CSR, features and weights are
 * identical in both paths and excluded. The model is a proxy, not a
 * counter measurement — it bounds what fusion can save and the wall
 * clock shows what it does save.
 *
 * Before timing, the streaming pipeline is bit-compared against the
 * unfused forward on a 1-thread schedule (plain commits, 16-aligned
 * panels) and the verdict is the process exit code.
 *
 * Usage: fusion [--smoke] [nodes] [nnz] [max_degree] [threads] [reps]
 *        (defaults: 500000, 5000000, 50000, hw threads, 3;
 *         --smoke: 3000, 24000, 256, hw threads, 1 — the TSan gate)
 */
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "mps/core/fusion.h"
#include "mps/core/locality.h"
#include "mps/core/schedule.h"
#include "mps/core/spmm.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/sparse/generate.h"
#include "mps/util/json.h"
#include "mps/util/rng.h"
#include "mps/util/timer.h"
#include "mps/util/work_steal_pool.h"

namespace {

using namespace mps;

template <class Fn>
double
best_of_reps(int reps, const Fn &run)
{
    run(); // warm the pool, the pages and the panel buffers
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        Timer timer;
        run();
        best = std::min(best, timer.elapsed_seconds());
    }
    return best;
}

bool
bit_identical(const DenseMatrix &x, const DenseMatrix &y)
{
    for (index_t r = 0; r < x.rows(); ++r) {
        for (index_t d = 0; d < x.cols(); ++d) {
            if (x(r, d) != y(r, d))
                return false;
        }
    }
    return true;
}

double
to_gb(double bytes)
{
    return bytes / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int arg0 = 1;
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
        smoke = true;
        ++arg0;
    }
    const index_t nodes = argc > arg0
        ? static_cast<index_t>(std::atol(argv[arg0]))
        : (smoke ? 3000 : 500000);
    const index_t nnz = argc > arg0 + 1
        ? static_cast<index_t>(std::atol(argv[arg0 + 1]))
        : (smoke ? 24000 : 5000000);
    const index_t max_degree = argc > arg0 + 2
        ? static_cast<index_t>(std::atol(argv[arg0 + 2]))
        : (smoke ? 256 : 50000);
    const unsigned threads = argc > arg0 + 3
        ? static_cast<unsigned>(std::atoi(argv[arg0 + 3]))
        : std::max(1u, std::thread::hardware_concurrency());
    const int reps =
        argc > arg0 + 4 ? std::atoi(argv[arg0 + 4]) : (smoke ? 1 : 3);

    // f small so the feature GEMM does not drown the SpMM under flops
    // (real GCN hidden layers are the wide-d regime the paper studies);
    // hidden = 128 is the acceptance dimension.
    const index_t f = 32, hidden = 128, classes = 32;

    PowerLawParams params;
    params.nodes = nodes;
    params.target_nnz = nnz;
    params.max_degree = max_degree;
    params.seed = 20;
    CsrMatrix a = power_law_graph(params);
    a.normalize_gcn();
    const index_t n = a.rows();

    Pcg32 rng(7);
    DenseMatrix x(n, f), w1(f, hidden), w2(hidden, classes);
    x.fill_random(rng);
    w1.fill_random(rng);
    w2.fill_random(rng);

    WorkStealPool pool(threads);
    MergePathSchedule sched = MergePathSchedule::build(
        a, static_cast<index_t>(threads) * 16);

    // Unfused baseline localities: exactly what the pre-fusion layer
    // resolves for each dimension.
    SpmmLocality loc_h, loc_c;
    loc_h.tile_d = auto_tile_d(a.cols(), hidden);
    loc_h.prefetch = auto_prefetch_distance(hidden);
    loc_c.tile_d = auto_tile_d(a.cols(), classes);
    loc_c.prefetch = auto_prefetch_distance(classes);

    // Fused plans: one schedule shared by both layers, panel width from
    // the fused auto-tuner.
    auto shared = borrow_schedule(sched);
    FusedLayerPlan plan1(a, hidden, shared,
                         default_fused_locality(a.cols(), hidden));
    FusedLayerPlan plan2(a, classes, shared,
                         default_fused_locality(a.cols(), classes));

    // ---- Bit-identity gate: streaming pipeline vs unfused forward on
    // a 1-thread schedule (plain commits, 16-aligned panel offsets).
    bool gate = true;
    {
        MergePathSchedule sched1 = MergePathSchedule::build(a, 1);
        auto shared1 = borrow_schedule(sched1);

        DenseMatrix xw1(n, hidden), h1(n, hidden), hw2(n, classes),
            want(n, classes);
        dense_gemm(x, w1, xw1, pool);
        mergepath_spmm_parallel(a, xw1, h1, sched1, pool);
        apply_activation(h1, Activation::kRelu);
        dense_gemm(h1, w2, hw2, pool);
        mergepath_spmm_parallel(a, hw2, want, sched1, pool);

        // Pin a narrow width for the gate: it must prove identity
        // ACROSS panel seams even when the tuner would run one panel.
        SpmmLocality gloc = default_fused_locality(a.cols(), hidden);
        gloc.tile_d = std::min<index_t>(32, hidden);
        gloc.auto_width = false;
        FusedLayerPlan g1(a, hidden, shared1, gloc);
        FusedLayerPlan g2(a, classes, shared1,
                          default_fused_locality(a.cols(), classes));
        DenseMatrix hw2f(n, classes), got(n, classes);
        hw2f.fill(0.0f);
        RankUpdateEpilogue rank = make_rank_update_epilogue(
            Activation::kRelu, w2, hw2f, gloc.row_scatter);
        g1.run_streaming(
            gemm_panel_source(x, w1, pool),
            [&rank](index_t col0, index_t width, const DenseMatrix &) {
                rank.w_row0 = col0 + width;
            },
            pool, &RankUpdateEpilogue::apply, &rank);
        g2.run(slice_panel_source(hw2f), got, pool);
        gate = bit_identical(got, want);
    }

    // ---- Timed runs (shared schedule, multi-thread). Temporaries are
    // allocated INSIDE the lambdas, exactly where the shipped call
    // paths allocate them: the unfused layer news up its XW per call
    // (GcnLayer::forward) and the classic model loop news up each
    // layer output; the fused side news up its per-inference output
    // and rank-update accumulator (GcnModel::fused_infer). The plans
    // themselves — with their panel buffers and GEMM scratch — sit
    // OUTSIDE the lambdas because the kernel caches its fused plan
    // across forwards (MergePathSpmm::fused_plan): the steady-state
    // call only pays the panel work, not the plan's buffers.
    DenseMatrix h1(n, hidden); // layer-2 study input (both variants)

    const double l1_unfused_s = best_of_reps(reps, [&] {
        DenseMatrix xw(n, hidden), out(n, hidden);
        dense_gemm(x, w1, xw, pool);
        mergepath_spmm_parallel(a, xw, out, sched, pool, loc_h);
        apply_activation(out, Activation::kRelu);
        h1 = std::move(out);
    });
    const double l1_fused_s = best_of_reps(reps, [&] {
        DenseMatrix out(n, hidden);
        plan1.run(gemm_panel_source(x, w1, pool, plan1.gemm_scratch()),
                  out, pool, activation_epilogue(Activation::kRelu));
    });

    const double l2_unfused_s = best_of_reps(reps, [&] {
        DenseMatrix xw(n, classes), out(n, classes);
        dense_gemm(h1, w2, xw, pool);
        mergepath_spmm_parallel(a, xw, out, sched, pool, loc_c);
    });
    const double l2_fused_s = best_of_reps(reps, [&] {
        DenseMatrix out(n, classes);
        plan2.run(gemm_panel_source(h1, w2, pool, plan2.gemm_scratch()),
                  out, pool);
    });

    const double e2e_unfused_s = best_of_reps(reps, [&] {
        DenseMatrix current = x;
        {
            DenseMatrix xw(n, hidden), next(n, hidden);
            dense_gemm(current, w1, xw, pool);
            mergepath_spmm_parallel(a, xw, next, sched, pool, loc_h);
            apply_activation(next, Activation::kRelu);
            current = std::move(next);
        }
        DenseMatrix xw(n, classes), next(n, classes);
        dense_gemm(current, w2, xw, pool);
        mergepath_spmm_parallel(a, xw, next, sched, pool, loc_c);
    });
    const double e2e_fused_s = best_of_reps(reps, [&] {
        DenseMatrix hw2(n, classes);
        hw2.fill(0.0f);
        RankUpdateEpilogue rank = make_rank_update_epilogue(
            Activation::kRelu, w2, hw2, plan1.locality().row_scatter);
        plan1.run_streaming(
            gemm_panel_source(x, w1, pool, plan1.gemm_scratch()),
            [&rank](index_t col0, index_t width, const DenseMatrix &) {
                rank.w_row0 = col0 + width;
            },
            pool, &RankUpdateEpilogue::apply, &rank);
        DenseMatrix result(n, classes);
        plan2.run(slice_panel_source(hw2), result, pool);
    });

    // ---- DRAM-traffic proxy over the n x d temporaries (bytes).
    // Unfused layer d: XW costs a zero-init, the GEMM write and the
    // SpMM re-read (3 trips); C costs its zero-init, the commit write
    // and an activation read+write when present. Fused run(): when the
    // auto width stays narrow the source panel is produced and
    // consumed in cache (0 trips) and only C's zero + commit remain;
    // when run_tile() widened to full width (LLC-resident regime) the
    // full-width source buffer streams like XW minus the activation
    // pass. Streaming e2e: layer 1's XW and H1 never materialize at
    // all; layer 2 accumulates XW2 by rank updates, paying one hw2
    // read+write per layer-1 panel, then the sweep read and the logits
    // zero + write.
    const double bpe = sizeof(value_t);
    const double nf = static_cast<double>(n) * f * bpe;
    const double nh = static_cast<double>(n) * hidden * bpe;
    const double nc = static_cast<double>(n) * classes * bpe;
    const index_t panels1 =
        (hidden + plan1.tile() - 1) / plan1.tile();

    const double l1_unfused_b = 3 * nh + 4 * nh; // xw; C + act
    const double l1_fused_b =
        (plan1.run_tile() >= hidden ? 3 * nh : 0.0) + 2 * nh;
    const double l2_unfused_b = 3 * nc + 2 * nc;
    const double l2_fused_b =
        (plan2.run_tile() >= classes ? 3 * nc : 0.0) + 2 * nc;
    const double e2e_unfused_b = 2 * nf /* current = x copy */ +
                                 3 * nh /* xw1 */ +
                                 5 * nh /* h1 + act + L2 gemm read */ +
                                 3 * nc /* xw2 */ + 2 * nc /* logits */;
    // Streaming panels only drop out of the traffic when the tuner
    // kept them narrow enough to be cache-resident; in the flat-LLC
    // regime (tile == hidden) the source and output panels stream like
    // the matrices they replace — the pipeline's remaining saving is
    // H1 (never built) and XW2's GEMM round trip.
    // The rank update rides the commit epilogue (RankUpdateEpilogue),
    // so the out panel is write-only: it is consumed the moment each
    // row finalizes and never read back.
    const double e2e_panels_b =
        plan1.tile() < hidden
            ? 0.0
            : 2 * nh /* scratch: GEMM write + sweep read */ +
                  nh /* out panel: commit only */;
    const double e2e_fused_b = e2e_panels_b +
                               (1.0 + 2.0 * panels1) * nc /* hw2 acc */ +
                               nc /* sweep read */ +
                               2 * nc /* logits zero + write */;

    JsonWriter w;
    w.begin_object();
    w.key("bench").value("fusion");
    w.key("smoke").value(smoke);
    w.key("nodes").value(static_cast<int64_t>(n));
    w.key("nnz").value(static_cast<int64_t>(a.nnz()));
    w.key("max_degree").value(static_cast<int64_t>(max_degree));
    w.key("threads").value(static_cast<int64_t>(threads));
    w.key("reps").value(static_cast<int64_t>(reps));
    w.key("f").value(static_cast<int64_t>(f));
    w.key("hidden").value(static_cast<int64_t>(hidden));
    w.key("classes").value(static_cast<int64_t>(classes));
    w.key("fused_tile_hidden").value(static_cast<int64_t>(plan1.tile()));
    w.key("fused_run_tile_hidden")
        .value(static_cast<int64_t>(plan1.run_tile()));
    w.key("fused_tile_classes").value(static_cast<int64_t>(plan2.tile()));
    w.key("l2_bytes").value(detected_l2_bytes());
    w.key("llc_bytes").value(detected_llc_bytes());
    w.key("traffic_model")
        .value("n x d temporary stream trips only; CSR/X/W excluded; "
               "cache-resident panels count zero");

    w.key("layers").begin_array();
    w.begin_object();
    w.key("layer").value(static_cast<int64_t>(1));
    w.key("dim").value(static_cast<int64_t>(hidden));
    w.key("unfused_ms").value(l1_unfused_s * 1e3);
    w.key("fused_ms").value(l1_fused_s * 1e3);
    w.key("speedup").value(l1_unfused_s / l1_fused_s);
    w.key("unfused_traffic_gb").value(to_gb(l1_unfused_b));
    w.key("fused_traffic_gb").value(to_gb(l1_fused_b));
    w.key("traffic_saved_gb").value(to_gb(l1_unfused_b - l1_fused_b));
    w.end_object();
    w.begin_object();
    w.key("layer").value(static_cast<int64_t>(2));
    w.key("dim").value(static_cast<int64_t>(classes));
    w.key("unfused_ms").value(l2_unfused_s * 1e3);
    w.key("fused_ms").value(l2_fused_s * 1e3);
    w.key("speedup").value(l2_unfused_s / l2_fused_s);
    w.key("unfused_traffic_gb").value(to_gb(l2_unfused_b));
    w.key("fused_traffic_gb").value(to_gb(l2_fused_b));
    w.key("traffic_saved_gb").value(to_gb(l2_unfused_b - l2_fused_b));
    w.end_object();
    w.end_array();

    w.key("end_to_end").begin_object();
    w.key("unfused_ms").value(e2e_unfused_s * 1e3);
    w.key("fused_ms").value(e2e_fused_s * 1e3);
    w.key("speedup").value(e2e_unfused_s / e2e_fused_s);
    w.key("unfused_traffic_gb").value(to_gb(e2e_unfused_b));
    w.key("fused_traffic_gb").value(to_gb(e2e_fused_b));
    w.key("traffic_saved_gb")
        .value(to_gb(e2e_unfused_b - e2e_fused_b));
    w.end_object();

    w.key("bit_identical").value(gate);
    w.end_object();
    std::cout << w.str() << "\n";
    return gate ? 0 : 1;
}
