/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out. Not a
 * paper figure — this quantifies *why* MergePath-SpMM is built the way
 * it is, on the same GPU model as Figures 2-7:
 *
 *  1. Commit discipline: the identical merge-path schedule executed
 *     with (a) selective atomics (the paper's Algorithm 2),
 *     (b) all-atomic commits (no complete-row tracking), and
 *     (c) the SpMV-style serial fix-up. Isolates the contribution of
 *     partial/complete row tracking.
 *  2. Small-graph thread floor: the Sec. III-C minimum-thread rule
 *     (1024) on vs. off for the small graphs.
 *  3. Skew robustness: row-splitting vs GNNAdvisor vs MergePath-SpMM
 *     as the maximum degree of a fixed-size graph grows from uniform
 *     to one extreme evil row.
 */
#include <cstdio>

#include "common.h"
#include "mps/core/policy.h"
#include "mps/sparse/generate.h"
#include "mps/sparse/reorder.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

namespace {

void
commit_discipline_ablation(const GpuConfig &gpu, bool csv)
{
    std::printf("== Ablation 1: commit discipline "
                "(same merge-path schedule) ==\n");
    Table table({"graph", "selective_us", "all_atomic_us",
                 "serial_fixup_us", "selective_gain_vs_all_atomic",
                 "selective_gain_vs_serial"});
    for (const char *name : {"Citeseer", "Pubmed", "email-Euall",
                             "com-Amazon"}) {
        CsrMatrix a = make_dataset(name);
        index_t cost = default_merge_path_cost(16);
        double selective =
            simulate_gpu(build_mergepath_workload(a, 16, cost, gpu), gpu)
                .microseconds;
        double all_atomic =
            simulate_gpu(
                build_mergepath_all_atomic_workload(a, 16, cost, gpu),
                gpu)
                .microseconds;
        double serial =
            bench::model_kernel_us(a, 16, "mergepath_serial", gpu);
        table.new_row();
        table.add(name);
        table.add(selective, 2);
        table.add(all_atomic, 2);
        table.add(serial, 2);
        table.add(all_atomic / selective, 2);
        table.add(serial / selective, 2);
    }
    table.print(csv);
    std::printf("\n");
}

void
thread_floor_ablation(const GpuConfig &gpu, bool csv)
{
    std::printf("== Ablation 2: Sec. III-C minimum-thread floor ==\n");
    Table table({"graph", "floor_1024_us", "no_floor_us",
                 "no_floor_threads", "gain"});
    for (const char *name : {"Cora", "Citeseer", "Pubmed"}) {
        CsrMatrix a = make_dataset(name);
        const index_t dim = 16;
        index_t cost = default_merge_path_cost(dim);

        double with_floor =
            simulate_gpu(build_mergepath_workload(a, dim, cost, gpu),
                         gpu)
                .microseconds;
        double without_floor =
            simulate_gpu(build_mergepath_workload(a, dim, cost, gpu, {},
                                                  /*min_threads=*/0),
                         gpu)
                .microseconds;
        SimdPolicy no_floor;
        no_floor.lanes = gpu.lanes;
        no_floor.min_threads = 0;
        LaunchConfig launch = make_launch_config(a.rows(), a.nnz(), dim,
                                                 cost, no_floor);
        table.new_row();
        table.add(name);
        table.add(with_floor, 2);
        table.add(without_floor, 2);
        table.add_int(launch.num_threads);
        table.add(without_floor / with_floor, 2);
    }
    table.print(csv);
    std::printf("\n");
}

void
skew_robustness_ablation(const GpuConfig &gpu, bool csv)
{
    std::printf("== Ablation 3: robustness to degree skew "
                "(50k nodes, 600k nnz, dim 16) ==\n");
    Table table({"max_degree", "row_split_us", "gnnadvisor_us",
                 "mergepath_us", "mergepath_gain_vs_row_split"});
    for (index_t max_deg : {12, 64, 512, 4096, 25000}) {
        PowerLawParams p;
        p.nodes = 50000;
        p.target_nnz = 600000;
        p.max_degree = max_deg;
        p.seed = 77;
        CsrMatrix a = power_law_graph(p);
        double rs = bench::model_kernel_us(a, 16, "row_split", gpu);
        double ga = bench::model_kernel_us(a, 16, "gnnadvisor", gpu);
        double mp = bench::model_kernel_us(a, 16, "mergepath", gpu);
        table.new_row();
        table.add_int(max_deg);
        table.add(rs, 2);
        table.add(ga, 2);
        table.add(mp, 2);
        table.add(rs / mp, 2);
    }
    table.print(csv);
    std::printf(
        "\nRow-splitting degrades with skew; the merge-path schedule's"
        "\ncompletion time is insensitive to the evil row by design.\n");
}

void
reordering_ablation(const GpuConfig &gpu, bool csv)
{
    std::printf("== Ablation 4: does reordering rescue row-splitting?"
                " ==\n");
    Table table({"graph", "row_split_us", "rs_degsorted_us",
                 "rs_bfs_us", "mergepath_us"});
    for (const char *name : {"Nell", "As-caida", "Wiki-Vote"}) {
        CsrMatrix a = make_dataset(name);
        CsrMatrix sorted =
            permute_symmetric(a, degree_sort_permutation(a, true));
        CsrMatrix bfs = permute_symmetric(a, bfs_permutation(a));
        table.new_row();
        table.add(name);
        table.add(bench::model_kernel_us(a, 16, "row_split", gpu), 2);
        table.add(bench::model_kernel_us(sorted, 16, "row_split", gpu),
                  2);
        table.add(bench::model_kernel_us(bfs, 16, "row_split", gpu), 2);
        table.add(bench::model_kernel_us(a, 16, "mergepath", gpu), 2);
    }
    table.print(csv);
    std::printf(
        "\nRelabeling moves the evil rows around but some chunk still"
        "\nowns them; only the nnz-level decomposition removes the"
        " straggler.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("design-choice ablations (GPU model)");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);
    GpuConfig gpu = GpuConfig::rtx6000();
    bool csv = flags.get_bool("csv");
    commit_discipline_ablation(gpu, csv);
    thread_floor_ablation(gpu, csv);
    skew_robustness_ablation(gpu, csv);
    reordering_ablation(gpu, csv);
    return 0;
}
