/**
 * @file
 * Scheduler dispatch-overhead study: legacy mutex/condvar ThreadPool
 * vs the WorkStealPool every kernel now dispatches through.
 *
 * Two measurements, reported as one JSON document on stdout:
 *
 *  - dispatch: per-parallel_for wall time for a near-empty body at
 *    n == pool width (one tiny task per executor). This isolates the
 *    fixed cost the scheduler charges every kernel launch — the term
 *    that dominates the serving workload's many small batched SpMMs.
 *  - scaling: per-call wall time over a sweep of small n, showing
 *    where each pool stops serializing tiny jobs.
 *
 * Usage: pool_overhead [threads] [iters]   (defaults: 8, 20000)
 */
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "mps/util/json.h"
#include "mps/util/thread_pool.h"
#include "mps/util/timer.h"
#include "mps/util/work_steal_pool.h"

namespace {

/**
 * Mean nanoseconds per parallel_for of n near-empty tasks. The body
 * writes one distinct cell per index so the loop cannot be elided yet
 * stays tiny against the dispatch cost being measured.
 */
template <class Pool>
double
per_call_ns(Pool &pool, uint64_t n, int iters)
{
    std::vector<uint64_t> sink(static_cast<size_t>(n), 0);
    for (int warm = 0; warm < iters / 10 + 1; ++warm)
        pool.parallel_for(n, [&](uint64_t i) { sink[i] += i; });
    mps::Timer timer;
    for (int it = 0; it < iters; ++it)
        pool.parallel_for(n, [&](uint64_t i) { sink[i] += i; });
    volatile uint64_t guard = sink[0];
    (void)guard;
    return timer.elapsed_ns() / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned threads =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
    const int iters = argc > 2 ? std::atoi(argv[2]) : 20000;

    mps::ThreadPool condvar_pool(threads);
    mps::WorkStealPool steal_pool(threads);

    mps::JsonWriter w;
    w.begin_object();
    w.key("bench").value("pool_overhead");
    w.key("threads").value(static_cast<int64_t>(threads));
    w.key("iters").value(static_cast<int64_t>(iters));

    // Fixed dispatch cost: one tiny task per executor.
    const double condvar_ns = per_call_ns(condvar_pool, threads, iters);
    const double steal_ns = per_call_ns(steal_pool, threads, iters);
    w.key("dispatch").begin_object();
    w.key("n").value(static_cast<int64_t>(threads));
    w.key("condvar_ns_per_call").value(condvar_ns);
    w.key("worksteal_ns_per_call").value(steal_ns);
    w.key("overhead_ratio")
        .value(steal_ns > 0.0 ? condvar_ns / steal_ns : 0.0);
    w.end_object();

    // Small-n scaling: where does each pool stop serializing?
    w.key("scaling").begin_array();
    for (uint64_t n : {uint64_t{1}, uint64_t{8}, uint64_t{64},
                       uint64_t{512}, uint64_t{4096}}) {
        const int it = static_cast<int>(
            std::max<uint64_t>(200, static_cast<uint64_t>(iters) /
                                        (1 + n / 8)));
        const double c = per_call_ns(condvar_pool, n, it);
        const double s = per_call_ns(steal_pool, n, it);
        w.begin_object();
        w.key("n").value(static_cast<int64_t>(n));
        w.key("condvar_ns_per_call").value(c);
        w.key("worksteal_ns_per_call").value(s);
        w.key("speedup").value(s > 0.0 ? c / s : 0.0);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
}
