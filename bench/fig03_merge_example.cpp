/**
 * @file
 * Figure 3: the paper's worked example of distributing a 10-row,
 * 16-non-zero adjacency matrix over four threads with merge-path.
 *
 * Prints each thread's diagonal range, start/end coordinates, the
 * resolved partial/complete row assignment, and the per-thread merge
 * items — demonstrating the equitable split (no thread exceeds the
 * merge-path cost of ceil(26/4) = 7) no matter how skewed the rows.
 */
#include <cstdio>

#include "mps/core/schedule.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

namespace {

/** "(r,n)" without triggering gcc-12's -Wrestrict false positive. */
std::string
coord(index_t r, index_t n)
{
    std::string s = "(";
    s += std::to_string(r);
    s += ",";
    s += std::to_string(n);
    s += ")";
    return s;
}

std::string
range(const std::string &prefix, index_t row, index_t begin, index_t end)
{
    std::string s = prefix;
    s += std::to_string(row);
    s += " nnz[";
    s += std::to_string(begin);
    s += ",";
    s += std::to_string(end);
    s += ")";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 3: merge-path walk-through example");
    flags.add_int("threads", 4, "number of threads");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    // A 10-row matrix with 16 non-zeros; row 0 is the heavy one
    // (8 nnz), matching the situation Figure 3 illustrates.
    std::vector<index_t> row_ptr{0, 8, 9, 11, 12, 12, 13, 14, 14, 15, 16};
    std::vector<index_t> col_idx(16);
    for (index_t k = 0; k < 16; ++k)
        col_idx[static_cast<size_t>(k)] = k % 10;
    std::vector<value_t> values(16, 1.0f);
    CsrMatrix a(10, 10, row_ptr, col_idx, values);

    index_t threads = static_cast<index_t>(flags.get_int("threads"));
    MergePathSchedule sched = MergePathSchedule::build(a, threads);
    sched.validate(a);

    std::printf("matrix: %d rows, %d non-zeros -> merge path length %d,"
                " cost per thread %lld\n\n",
                a.rows(), a.nnz(), a.rows() + a.nnz(),
                static_cast<long long>(sched.items_per_thread()));

    Table table({"thread", "start(row,nz)", "end(row,nz)", "items",
                 "partial_head", "complete_rows", "partial_tail"});
    for (index_t t = 0; t < sched.num_threads(); ++t) {
        const ThreadWork &w = sched.work(t);
        ResolvedWork r = sched.resolve(t, a);
        table.new_row();
        table.add_int(t);
        table.add(coord(w.start.row, w.start.nz));
        table.add(coord(w.end.row, w.end.nz));
        table.add_int((w.end.row - w.start.row) +
                      (w.end.nz - w.start.nz));
        if (r.has_head() && r.head_atomic) {
            table.add(range("row ", r.head_row, r.head_begin,
                            r.head_end));
        } else if (r.has_head()) {
            std::string whole = "row ";
            whole += std::to_string(r.head_row);
            whole += " (whole)";
            table.add(whole);
        } else {
            table.add("-");
        }
        table.add(coord(r.first_complete_row, r.last_complete_row));
        if (r.has_tail()) {
            table.add(range("row ", r.tail_row, r.tail_begin,
                            r.tail_end));
        } else {
            table.add("-");
        }
    }
    table.print(flags.get_bool("csv"));

    ScheduleCensus census = sched.census(a);
    std::printf("\n%lld atomic commits on %lld split rows, %lld plain"
                " row writes.\nThe heavy row 0 is shared by multiple"
                " threads (partial head/tail entries),\nwhile every"
                " thread still holds at most %lld merge items.\n",
                static_cast<long long>(census.atomic_commits),
                static_cast<long long>(census.split_rows),
                static_cast<long long>(census.plain_row_writes),
                static_cast<long long>(sched.items_per_thread()));
    return 0;
}
