/**
 * @file
 * Figure 6: merge-path cost sensitivity. For each dimension size the
 * cost is swept from 2 to 50; performance is the geomean across the
 * selected graphs, normalized to cost 2, and the best-performing cost
 * is reported.
 *
 * Paper reference best costs: d=2 -> 50, d=4 -> 15, d=8 -> 15,
 * d=16 -> 20, d=32 -> 30, d=64 -> 35, d=128 -> 50.
 */
#include <cstdio>

#include "common.h"
#include "mps/util/cli.h"
#include "mps/util/stats.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Figure 6: merge-path cost sweep per dimension");
    flags.add_string("graphs", "small",
                     "graph selector (default: nnz <= 1.5M)");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    GpuConfig gpu = GpuConfig::rtx6000();
    const index_t dims[] = {2, 4, 8, 16, 32, 64, 128};
    const index_t costs[] = {2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50};
    const index_t paper_best[] = {50, 15, 15, 20, 30, 35, 50};

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    std::vector<CsrMatrix> graphs;
    graphs.reserve(specs.size());
    for (const auto &spec : specs)
        graphs.push_back(make_dataset(spec));

    std::vector<std::string> headers{"dim"};
    for (index_t c : costs) {
        std::string h = "c";
        h += std::to_string(c);
        headers.push_back(h);
    }
    headers.push_back("best_cost");
    headers.push_back("paper_best");
    Table table(headers);

    for (size_t di = 0; di < std::size(dims); ++di) {
        index_t dim = dims[di];
        std::vector<double> normalized;
        double best_perf = 0.0;
        index_t best_cost = costs[0];
        double base = 0.0;
        table.new_row();
        table.add_int(dim);
        for (index_t cost : costs) {
            std::vector<double> times;
            for (const CsrMatrix &a : graphs) {
                bench::ModelOptions opts;
                opts.cost = cost;
                times.push_back(
                    bench::model_kernel_us(a, dim, "mergepath", gpu,
                                           opts));
            }
            double t = geomean(times);
            if (cost == costs[0])
                base = t;
            double perf = base / t; // higher is better, 1.0 at cost 2
            table.add(perf, 3);
            if (perf > best_perf) {
                best_perf = perf;
                best_cost = cost;
            }
        }
        table.add_int(best_cost);
        table.add_int(paper_best[di]);
    }
    table.print(flags.get_bool("csv"));
    std::printf(
        "\nCells: performance normalized to cost=2 (geomean over %zu"
        " graphs).\n",
        graphs.size());
    return 0;
}
