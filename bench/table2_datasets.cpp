/**
 * @file
 * Table II: the 23 evaluation graphs. Generates every dataset with the
 * synthetic registry and verifies the published node / non-zero /
 * degree numbers are matched exactly (nodes, nnz, max degree) or to
 * rounding (average degree).
 */
#include <cmath>
#include <cstdio>

#include "common.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/cli.h"
#include "mps/util/table.h"

using namespace mps;

int
main(int argc, char **argv)
{
    FlagParser flags("Table II: evaluation graphs (generated vs published)");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.parse(argc, argv);

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"type", "graph", "nodes", "nnz", "avg_deg", "max_deg",
                 "match"});
    int mismatches = 0;
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        DegreeStats s = compute_degree_stats(a);
        bool ok = a.rows() == spec.nodes && a.nnz() == spec.nnz &&
                  s.max_degree == spec.max_degree &&
                  std::abs(s.avg_degree - spec.avg_degree) < 0.08;
        mismatches += !ok;
        table.new_row();
        table.add(spec.type == GraphType::kPowerLaw ? "I" : "II");
        table.add(spec.name);
        table.add_int(a.rows());
        table.add_int(a.nnz());
        table.add(s.avg_degree, 1);
        table.add_int(s.max_degree);
        table.add(ok ? "ok" : "MISMATCH");
    }
    table.print(flags.get_bool("csv"));
    std::printf("\n%d/%zu graphs match the published Table II numbers.\n",
                static_cast<int>(specs.size()) - mismatches, specs.size());
    return mismatches == 0 ? 0 : 1;
}
