/**
 * @file
 * Table II: the 23 evaluation graphs. Generates every dataset with the
 * synthetic registry and verifies the published node / non-zero /
 * degree numbers are matched exactly (nodes, nnz, max degree) or to
 * rounding (average degree).
 *
 * --hybrid adds a measured row per graph: HybridSpmm vs the pre-hybrid
 * AdaptiveSpmm baseline and vs pure merge-path at the acceptance
 * dimension (d=128 by default), plus the dense-band fraction the
 * classifier found. --json=<path> writes the same rows as one JSON
 * document so the speedup claim is reproducible from a single file.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common.h"
#include "mps/core/hybrid.h"
#include "mps/kernels/adaptive.h"
#include "mps/kernels/hybrid_kernel.h"
#include "mps/kernels/mergepath_kernel.h"
#include "mps/gcn/model.h"
#include "mps/sparse/degree_stats.h"
#include "mps/util/cli.h"
#include "mps/util/json.h"
#include "mps/util/rng.h"
#include "mps/util/table.h"
#include "mps/util/timer.h"
#include "mps/util/work_steal_pool.h"

using namespace mps;

namespace {

template <class Fn>
double
best_of_reps(int reps, const Fn &run)
{
    run(); // warm the pool, the pages and the schedules
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        Timer timer;
        run();
        best = std::min(best, timer.elapsed_ms());
    }
    return best;
}

struct HybridRow
{
    std::string name;
    double dense_fraction = 0.0;
    int64_t bands = 0;
    double adaptive_ms = 0.0;
    double mergepath_ms = 0.0;
    double hybrid_ms = 0.0;
    double vs_adaptive = 0.0;
    double vs_mergepath = 0.0;
};

HybridRow
bench_hybrid(const DatasetSpec &spec, index_t dim, int reps,
             WorkStealPool &pool)
{
    CsrMatrix a = make_dataset(spec);
    DenseMatrix b(a.cols(), dim);
    Pcg32 rng(7);
    b.fill_random(rng);
    DenseMatrix c(a.rows(), dim);

    // The pre-PR baseline: adaptive selection without the hybrid
    // strategy reachable (what AdaptiveSpmm shipped before this
    // change), so the speedup is against the previous best pick.
    AdaptiveSpmm adaptive(0.7, /*enable_hybrid=*/false);
    adaptive.prepare(a, dim);
    MergePathSpmm mergepath;
    mergepath.prepare(a, dim);
    HybridSpmm hybrid;
    hybrid.prepare(a, dim);

    HybridRow row;
    row.name = spec.name;
    row.dense_fraction = hybrid.schedule().dense_fraction();
    row.bands =
        static_cast<int64_t>(hybrid.schedule().partition().bands.size());
    row.adaptive_ms =
        best_of_reps(reps, [&] { adaptive.run(a, b, c, pool); });
    row.mergepath_ms =
        best_of_reps(reps, [&] { mergepath.run(a, b, c, pool); });
    row.hybrid_ms =
        best_of_reps(reps, [&] { hybrid.run(a, b, c, pool); });
    row.vs_adaptive = row.adaptive_ms / row.hybrid_ms;
    row.vs_mergepath = row.mergepath_ms / row.hybrid_ms;
    return row;
}

/** Mixed-precision timing + accuracy of one graph at dimension d. */
struct PrecisionRow
{
    std::string name;
    double f32_ms = 0.0;
    double bf16_ms = 0.0;
    double int8_ms = 0.0;
    double bf16_speedup = 0.0;
    double int8_speedup = 0.0;
    // Accuracy vs an fp64-accumulated reference of the same f32 data.
    double f32_max_abs = 0.0, f32_rel = 0.0;
    double bf16_max_abs = 0.0, bf16_rel = 0.0;
    double int8_max_abs = 0.0, int8_rel = 0.0;
    // End-to-end 2-layer GCN inference (hidden width = d).
    double gcn_f32_ms = 0.0;
    double gcn_bf16_ms = 0.0;
    double gcn_speedup = 0.0;
};

/**
 * fp64-accumulated SpMM of the f32 inputs: the accuracy yardstick.
 * Every kernel mode (including f32) is scored against this, so the
 * bf16/int8 deltas can be read next to the f32 rounding floor.
 */
std::vector<double>
reference_spmm_f64(const CsrMatrix &a, const DenseMatrix &b, index_t dim,
                   WorkStealPool &pool)
{
    std::vector<double> ref(static_cast<size_t>(a.rows()) * dim, 0.0);
    pool.parallel_for_ranges(
        static_cast<uint64_t>(a.rows()),
        [&](uint64_t begin, uint64_t end) {
            for (index_t i = static_cast<index_t>(begin);
                 i < static_cast<index_t>(end); ++i) {
                double *out = ref.data() + static_cast<size_t>(i) * dim;
                for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1];
                     ++k) {
                    const double v = a.values()[k];
                    const value_t *brow = b.row(a.col_idx()[k]);
                    for (index_t d = 0; d < dim; ++d)
                        out[d] += v * static_cast<double>(brow[d]);
                }
            }
        });
    return ref;
}

void
score_accuracy(const DenseMatrix &c, const std::vector<double> &ref,
               double ref_max, double *max_abs, double *rel)
{
    double worst = 0.0;
    for (index_t i = 0; i < c.rows(); ++i) {
        const value_t *crow = c.row(i);
        const double *rrow =
            ref.data() + static_cast<size_t>(i) * c.cols();
        for (index_t d = 0; d < c.cols(); ++d)
            worst = std::max(
                worst, std::abs(static_cast<double>(crow[d]) - rrow[d]));
    }
    *max_abs = worst;
    *rel = ref_max > 0.0 ? worst / ref_max : 0.0;
}

PrecisionRow
bench_precision(const DatasetSpec &spec, index_t dim, int reps,
                WorkStealPool &pool)
{
    CsrMatrix a = make_dataset(spec);
    a.normalize_gcn(); // bounded values, the GCN serving regime
    DenseMatrix b(a.cols(), dim);
    Pcg32 rng(7);
    b.fill_random(rng);
    DenseMatrix c(a.rows(), dim);
    MergePathSpmm kernel;
    kernel.prepare(a, dim);

    const std::vector<double> ref = reference_spmm_f64(a, b, dim, pool);
    double ref_max = 0.0;
    for (double v : ref)
        ref_max = std::max(ref_max, std::abs(v));

    PrecisionRow row;
    row.name = spec.name;
    auto run_mode = [&](StorageMode mode, double *max_abs, double *rel) {
        b.quantize(mode);
        const double ms =
            best_of_reps(reps, [&] { kernel.run(a, b, c, pool); });
        score_accuracy(c, ref, ref_max, max_abs, rel);
        return ms;
    };
    row.f32_ms = run_mode(StorageMode::kF32, &row.f32_max_abs,
                          &row.f32_rel);
    row.bf16_ms = run_mode(StorageMode::kBf16, &row.bf16_max_abs,
                           &row.bf16_rel);
    row.int8_ms = run_mode(StorageMode::kInt8, &row.int8_max_abs,
                           &row.int8_rel);
    row.bf16_speedup = row.f32_ms / row.bf16_ms;
    row.int8_speedup = row.f32_ms / row.int8_ms;

    // End-to-end: 2-layer GCN with hidden width d, bf16 inference vs
    // f32 (training-shaped f32 stays the default; set_precision is the
    // inference opt-in the serving path uses).
    DenseMatrix x(a.rows(), dim);
    x.fill_random(rng);
    GcnModel model = GcnModel::two_layer(dim, dim, 16, 1, "mergepath");
    model.set_precision(StorageMode::kF32);
    row.gcn_f32_ms =
        best_of_reps(reps, [&] { model.infer(a, x, pool); });
    model.set_precision(StorageMode::kBf16);
    row.gcn_bf16_ms =
        best_of_reps(reps, [&] { model.infer(a, x, pool); });
    row.gcn_speedup = row.gcn_f32_ms / row.gcn_bf16_ms;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagParser flags("Table II: evaluation graphs (generated vs published)");
    flags.add_string("graphs", "all", "graph selector");
    flags.add_bool("csv", false, "emit CSV instead of aligned text");
    flags.add_bool("hybrid", false,
                   "measure HybridSpmm vs adaptive/merge-path per graph");
    flags.add_bool("precision", false,
                   "measure f32/bf16/int8 mergepath + 2-layer GCN with "
                   "accuracy vs an fp64 reference");
    flags.add_int("dim", 128, "dense dimension for --hybrid");
    flags.add_int("reps", 5, "timing repetitions for --hybrid");
    flags.add_int("threads", 0, "pool threads for --hybrid (0 = hw)");
    flags.add_string("json", "", "write --hybrid rows to this JSON file");
    flags.parse(argc, argv);

    auto specs = bench::select_graphs(flags.get_string("graphs"));
    Table table({"type", "graph", "nodes", "nnz", "avg_deg", "max_deg",
                 "match"});
    int mismatches = 0;
    for (const auto &spec : specs) {
        CsrMatrix a = make_dataset(spec);
        DegreeStats s = compute_degree_stats(a);
        bool ok = a.rows() == spec.nodes && a.nnz() == spec.nnz &&
                  s.max_degree == spec.max_degree &&
                  std::abs(s.avg_degree - spec.avg_degree) < 0.08;
        mismatches += !ok;
        table.new_row();
        table.add(spec.type == GraphType::kPowerLaw ? "I" : "II");
        table.add(spec.name);
        table.add_int(a.rows());
        table.add_int(a.nnz());
        table.add(s.avg_degree, 1);
        table.add_int(s.max_degree);
        table.add(ok ? "ok" : "MISMATCH");
    }
    table.print(flags.get_bool("csv"));
    std::printf("\n%d/%zu graphs match the published Table II numbers.\n",
                static_cast<int>(specs.size()) - mismatches, specs.size());

    if (flags.get_bool("hybrid")) {
        const index_t dim = static_cast<index_t>(flags.get_int("dim"));
        const int reps = static_cast<int>(flags.get_int("reps"));
        unsigned threads =
            static_cast<unsigned>(flags.get_int("threads"));
        if (threads == 0)
            threads =
                std::max(1u, std::thread::hardware_concurrency());
        WorkStealPool pool(threads);

        Table ht({"graph", "dense_frac", "bands", "adaptive_ms",
                  "mergepath_ms", "hybrid_ms", "vs_adaptive",
                  "vs_mergepath"});
        std::vector<HybridRow> rows;
        int wins = 0;
        for (const auto &spec : specs) {
            HybridRow row = bench_hybrid(spec, dim, reps, pool);
            wins += row.vs_adaptive >= 1.2;
            ht.new_row();
            ht.add(row.name);
            ht.add(row.dense_fraction, 3);
            ht.add_int(row.bands);
            ht.add(row.adaptive_ms, 3);
            ht.add(row.mergepath_ms, 3);
            ht.add(row.hybrid_ms, 3);
            ht.add(row.vs_adaptive, 2);
            ht.add(row.vs_mergepath, 2);
            rows.push_back(std::move(row));
        }
        std::printf("\nHybridSpmm vs AdaptiveSpmm (no-hybrid baseline) "
                    "and pure merge-path, d=%lld, best of %d:\n",
                    static_cast<long long>(dim), reps);
        ht.print(flags.get_bool("csv"));
        std::printf("\n%d/%zu graphs at >= 1.2x over the adaptive "
                    "baseline.\n",
                    wins, rows.size());

        const std::string json_path = flags.get_string("json");
        if (!json_path.empty()) {
            JsonWriter w;
            w.begin_object();
            w.key("dim").value(static_cast<int64_t>(dim));
            w.key("reps").value(reps);
            w.key("threads").value(static_cast<int64_t>(threads));
            w.key("hybrid_enabled").value(hybrid_enabled());
            w.key("graphs").begin_array();
            for (const auto &row : rows) {
                w.begin_object();
                w.key("graph").value(row.name);
                w.key("dense_fraction").value(row.dense_fraction);
                w.key("bands").value(row.bands);
                w.key("adaptive_ms").value(row.adaptive_ms);
                w.key("mergepath_ms").value(row.mergepath_ms);
                w.key("hybrid_ms").value(row.hybrid_ms);
                w.key("speedup_vs_adaptive").value(row.vs_adaptive);
                w.key("speedup_vs_mergepath").value(row.vs_mergepath);
                w.end_object();
            }
            w.end_array();
            w.end_object();
            std::ofstream out(json_path);
            out << w.str() << "\n";
            std::printf("wrote %s\n", json_path.c_str());
        }
    }

    if (flags.get_bool("precision")) {
        const index_t dim = static_cast<index_t>(flags.get_int("dim"));
        const int reps = static_cast<int>(flags.get_int("reps"));
        unsigned threads =
            static_cast<unsigned>(flags.get_int("threads"));
        if (threads == 0)
            threads =
                std::max(1u, std::thread::hardware_concurrency());
        WorkStealPool pool(threads);

        Table pt({"graph", "f32_ms", "bf16_ms", "int8_ms", "bf16_x",
                  "int8_x", "bf16_maxabs", "bf16_rel", "int8_maxabs",
                  "int8_rel", "gcn_f32_ms", "gcn_bf16_ms", "gcn_x"});
        std::vector<PrecisionRow> rows;
        int gcn_wins = 0;
        for (const auto &spec : specs) {
            PrecisionRow row = bench_precision(spec, dim, reps, pool);
            gcn_wins += row.gcn_speedup >= 1.5;
            pt.new_row();
            pt.add(row.name);
            pt.add(row.f32_ms, 3);
            pt.add(row.bf16_ms, 3);
            pt.add(row.int8_ms, 3);
            pt.add(row.bf16_speedup, 2);
            pt.add(row.int8_speedup, 2);
            pt.add(row.bf16_max_abs, 6);
            pt.add(row.bf16_rel, 6);
            pt.add(row.int8_max_abs, 6);
            pt.add(row.int8_rel, 6);
            pt.add(row.gcn_f32_ms, 3);
            pt.add(row.gcn_bf16_ms, 3);
            pt.add(row.gcn_speedup, 2);
            rows.push_back(std::move(row));
        }
        std::printf("\nMixed-precision mergepath + 2-layer GCN "
                    "(hidden=%lld), accuracy vs fp64 reference, best "
                    "of %d:\n",
                    static_cast<long long>(dim), reps);
        pt.print(flags.get_bool("csv"));
        std::printf("\n%d/%zu graphs at >= 1.5x end-to-end GCN with "
                    "bf16.\n",
                    gcn_wins, rows.size());

        const std::string json_path = flags.get_string("json");
        if (!json_path.empty() && !flags.get_bool("hybrid")) {
            JsonWriter w;
            w.begin_object();
            w.key("dim").value(static_cast<int64_t>(dim));
            w.key("reps").value(reps);
            w.key("threads").value(static_cast<int64_t>(threads));
            w.key("graphs").begin_array();
            for (const auto &row : rows) {
                w.begin_object();
                w.key("graph").value(row.name);
                w.key("f32_ms").value(row.f32_ms);
                w.key("bf16_ms").value(row.bf16_ms);
                w.key("int8_ms").value(row.int8_ms);
                w.key("bf16_speedup_vs_f32").value(row.bf16_speedup);
                w.key("int8_speedup_vs_f32").value(row.int8_speedup);
                w.key("f32_max_abs_err").value(row.f32_max_abs);
                w.key("f32_rel_err").value(row.f32_rel);
                w.key("bf16_max_abs_err").value(row.bf16_max_abs);
                w.key("bf16_rel_err").value(row.bf16_rel);
                w.key("int8_max_abs_err").value(row.int8_max_abs);
                w.key("int8_rel_err").value(row.int8_rel);
                w.key("gcn_f32_ms").value(row.gcn_f32_ms);
                w.key("gcn_bf16_ms").value(row.gcn_bf16_ms);
                w.key("gcn_bf16_speedup").value(row.gcn_speedup);
                w.end_object();
            }
            w.end_array();
            w.end_object();
            std::ofstream out(json_path);
            out << w.str() << "\n";
            std::printf("wrote %s\n", json_path.c_str());
        }
    }
    return mismatches == 0 ? 0 : 1;
}
