/**
 * @file
 * mps_tool — command-line front end for the MergePath-SpMM library.
 *
 *   mps_tool generate --dataset=Nell --out=nell.bin
 *   mps_tool convert  --in=graph.mtx --out=graph.bin
 *   mps_tool info     --in=graph.bin
 *   mps_tool schedule --in=graph.bin --cost=20 --dim=16 [--out=s.bin]
 *   mps_tool spmm     --in=graph.bin --kernel=mergepath --dim=16
 *                     [--check] [--metrics-out=m.json] [--trace-out=t.json]
 *   mps_tool profile  --dataset=Cora,Pubmed --kernel=mergepath,row_split
 *                     --dim=16 [--fuse=on|off|both] [--out=report.json]
 *                     [--trace-out=t.json]
 *   mps_tool reorder  --in=graph.bin --method=bfs --out=relabeled.bin
 *   mps_tool serve-bench --clients=1,2,4,8 --max-batch=1,8
 *                     [--out=report.json] [--telemetry-port=0]
 *   mps_tool churn-bench --update-edges=64,512,4096 --updates=80
 *                     [--out=report.json]
 *   mps_tool top      --url=http://127.0.0.1:9464/metrics
 *                     [--interval-ms=1000] [--once] [--strict]
 *
 * Containers: .bin (this library's binary CSR), .mtx (MatrixMarket),
 * .el (edge list, read-only), or a Table II dataset name via
 * --dataset.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mps/core/fusion.h"
#include "mps/core/locality.h"
#include "mps/core/policy.h"
#include "mps/core/schedule.h"
#include "mps/gcn/activation.h"
#include "mps/gcn/gemm.h"
#include "mps/core/schedule_cache.h"
#include "mps/core/serialize.h"
#include "mps/core/spmm.h"
#include "mps/gcn/layer.h"
#include "mps/kernels/registry.h"
#include "mps/serve/server.h"
#include "mps/serve/telemetry_server.h"
#include "mps/sparse/datasets.h"
#include "mps/sparse/degree_stats.h"
#include "mps/sparse/delta_csr.h"
#include "mps/sparse/generate.h"
#include "mps/sparse/io.h"
#include "mps/sparse/reorder.h"
#include "mps/util/cli.h"
#include "mps/util/json.h"
#include "mps/util/log.h"
#include "mps/util/metrics.h"
#include "mps/util/openmetrics.h"
#include "mps/util/rng.h"
#include "mps/util/work_steal_pool.h"
#include "mps/util/timer.h"
#include "mps/util/trace.h"

using namespace mps;

namespace {

bool
ends_with(const std::string &s, const char *suffix)
{
    size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Load a matrix from a container file path. */
CsrMatrix
load_matrix_file(const std::string &in)
{
    if (ends_with(in, ".bin"))
        return read_csr_binary_file(in);
    if (ends_with(in, ".mtx"))
        return CsrMatrix::from_coo(read_matrix_market_file(in));
    if (ends_with(in, ".el"))
        return CsrMatrix::from_coo(read_edge_list_file(in));
    fatal("unknown input container (want .bin, .mtx or .el): " + in);
}

/** Load a matrix from --in / --dataset flags. */
CsrMatrix
load_matrix(const FlagParser &flags)
{
    const std::string &dataset = flags.get_string("dataset");
    if (!dataset.empty())
        return make_dataset(dataset);
    const std::string &in = flags.get_string("in");
    if (in.empty())
        fatal("provide --in=<file> or --dataset=<name>");
    return load_matrix_file(in);
}

void
store_matrix(const CsrMatrix &m, const std::string &out)
{
    if (ends_with(out, ".bin")) {
        write_csr_binary_file(out, m);
    } else if (ends_with(out, ".mtx")) {
        std::ofstream f(out);
        if (!f)
            fatal("cannot open for writing: " + out);
        write_matrix_market(f, m.to_coo());
    } else {
        fatal("unknown output container (want .bin or .mtx): " + out);
    }
    inform("wrote " + out);
}

void
add_io_flags(FlagParser &flags)
{
    flags.add_string("in", "", "input matrix (.bin/.mtx/.el)");
    flags.add_string("dataset", "", "Table II dataset name instead of --in");
}

int
cmd_generate(int argc, char **argv)
{
    FlagParser flags("generate a registry dataset into a container");
    flags.add_string("dataset", "Cora", "Table II dataset name");
    flags.add_string("out", "graph.bin", "output file (.bin or .mtx)");
    flags.parse(argc, argv);
    CsrMatrix m = make_dataset(flags.get_string("dataset"));
    store_matrix(m, flags.get_string("out"));
    return 0;
}

int
cmd_convert(int argc, char **argv)
{
    FlagParser flags("convert between matrix containers");
    add_io_flags(flags);
    flags.add_string("out", "", "output file (.bin or .mtx)");
    flags.parse(argc, argv);
    CsrMatrix m = load_matrix(flags);
    if (flags.get_string("out").empty())
        fatal("convert needs --out");
    store_matrix(m, flags.get_string("out"));
    return 0;
}

int
cmd_info(int argc, char **argv)
{
    FlagParser flags("print matrix statistics");
    add_io_flags(flags);
    flags.add_bool("histogram", false, "print the degree histogram");
    flags.parse(argc, argv);
    CsrMatrix m = load_matrix(flags);
    DegreeStats s = compute_degree_stats(m);
    std::printf("%d x %d, %d non-zeros\n%s\n", m.rows(), m.cols(),
                m.nnz(), to_string(s).c_str());
    if (flags.get_bool("histogram"))
        std::printf("%s", degree_histogram(m).to_string().c_str());
    return 0;
}

int
cmd_schedule(int argc, char **argv)
{
    FlagParser flags("build and inspect a merge-path schedule");
    add_io_flags(flags);
    flags.add_int("dim", 16, "dense dimension (for the tuned cost)");
    flags.add_int("cost", 0, "merge-path cost (0 = tuned default)");
    flags.add_int("threads", 0, "explicit thread count (overrides cost)");
    flags.add_string("out", "", "optional schedule output (.bin)");
    flags.parse(argc, argv);
    CsrMatrix m = load_matrix(flags);

    MergePathSchedule sched;
    if (flags.get_int("threads") > 0) {
        sched = MergePathSchedule::build(
            m, static_cast<index_t>(flags.get_int("threads")));
    } else {
        index_t cost = static_cast<index_t>(flags.get_int("cost"));
        if (cost <= 0) {
            cost = default_merge_path_cost(
                static_cast<index_t>(flags.get_int("dim")));
        }
        sched = MergePathSchedule::build_with_cost(m, cost, 1024);
    }
    sched.validate(m);
    ScheduleCensus c = sched.census(m);
    std::printf("threads %d, cost %lld\n", sched.num_threads(),
                static_cast<long long>(sched.items_per_thread()));
    std::printf("atomic commits %lld (%.1f%% of writes), plain rows %lld,"
                " split rows %lld\n",
                static_cast<long long>(c.atomic_commits),
                100.0 * c.atomic_write_fraction(),
                static_cast<long long>(c.plain_row_writes),
                static_cast<long long>(c.split_rows));
    const std::string &out = flags.get_string("out");
    if (!out.empty()) {
        std::ofstream f(out, std::ios::binary);
        if (!f)
            fatal("cannot open for writing: " + out);
        write_schedule_binary(f, sched);
        inform("wrote " + out);
    }
    return 0;
}

/** Split a comma-separated flag value into its non-empty parts. */
std::vector<std::string>
split_list(const std::string &value)
{
    std::vector<std::string> parts;
    size_t begin = 0;
    while (begin <= value.size()) {
        size_t comma = value.find(',', begin);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > begin)
            parts.push_back(value.substr(begin, comma - begin));
        begin = comma + 1;
    }
    return parts;
}

/** Largest |c - gold| over all elements. */
double
max_abs_error(const DenseMatrix &c, const DenseMatrix &gold)
{
    double worst = 0.0;
    for (index_t r = 0; r < c.rows(); ++r) {
        for (index_t d = 0; d < c.cols(); ++d) {
            double err = std::abs(static_cast<double>(c(r, d)) -
                                  static_cast<double>(gold(r, d)));
            worst = std::max(worst, err);
        }
    }
    return worst;
}

int
cmd_spmm(int argc, char **argv)
{
    FlagParser flags("run one SpMM kernel and time it");
    add_io_flags(flags);
    flags.add_string("kernel", "mergepath", "registry kernel name");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("repeat", 5, "timed repetitions");
    flags.add_string("reorder", "",
                     "locality row reordering: none|degree|bfs|rcm "
                     "(default: MPS_REORDER)");
    flags.add_bool("check", false,
                   "verify against reference_spmm and report "
                   "max-abs-error");
    flags.add_string("metrics-out", "",
                     "collect metrics and write the JSON snapshot here");
    flags.add_string("trace-out", "",
                     "record spans and write Chrome trace JSON here");
    flags.parse(argc, argv);
    CsrMatrix m = load_matrix(flags);
    const index_t dim = static_cast<index_t>(flags.get_int("dim"));

    const std::string &metrics_out = flags.get_string("metrics-out");
    const std::string &trace_out = flags.get_string("trace-out");
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (!metrics_out.empty()) {
        metrics.reset();
        metrics.set_enabled(true);
    }
    if (!trace_out.empty())
        TraceSession::global().start();

    Pcg32 rng(1);
    DenseMatrix b(m.cols(), dim);
    b.fill_random(rng);
    DenseMatrix c(m.rows(), dim);
    WorkStealPool pool;
    auto kernel = make_spmm_kernel(flags.get_string("kernel"));
    if (!flags.get_string("reorder").empty())
        kernel->set_reorder(
            parse_reorder_kind(flags.get_string("reorder")));
    Timer prep;
    kernel->prepare(m, dim);
    double prep_ms = prep.elapsed_ms();

    kernel->run(m, b, c, pool); // warm-up
    Timer timer;
    const int repeat = static_cast<int>(flags.get_int("repeat"));
    for (int i = 0; i < repeat; ++i)
        kernel->run(m, b, c, pool);
    double ms = timer.elapsed_ms() / repeat;

    double checksum = 0.0;
    for (index_t r = 0; r < c.rows(); ++r)
        checksum += c(r, 0);
    std::printf("%s: prepare %.3f ms, run %.3f ms avg over %d"
                " (%.2f GFLOP/s), checksum %.6g\n",
                kernel->name().c_str(), prep_ms, ms, repeat,
                2.0 * m.nnz() * dim / (ms * 1e6), checksum);

    if (kernel->name() == "hybrid" && metrics.enabled()) {
        // The classifier publishes its split at prepare() time; echo
        // it so --kernel=hybrid runs explain where the nnz went.
        std::printf("dispatch: %.0f dense rows / %.0f tail rows, "
                    "%.0f dense nnz in %.0f bands (%.1f%% of nnz)\n",
                    metrics.gauge_value("dispatch.dense_rows"),
                    metrics.gauge_value("dispatch.tail_rows"),
                    metrics.gauge_value("dispatch.dense_nnz"),
                    metrics.gauge_value("dispatch.bands"),
                    100.0 *
                        metrics.gauge_value("dispatch.dense_fraction"));
    }

    int status = 0;
    if (flags.get_bool("check")) {
        // A checksum can mask compensating errors; compare every
        // element against the sequential gold kernel.
        DenseMatrix gold(m.rows(), dim);
        reference_spmm(m, b, gold);
        double err = max_abs_error(c, gold);
        bool ok = c.approx_equal(gold, 1e-3f, 1e-3f);
        std::printf("check vs reference: max-abs-error %.3e (%s)\n", err,
                    ok ? "ok" : "MISMATCH");
        if (!ok)
            status = 1;
    }

    if (!metrics_out.empty() && metrics.write_json_file(metrics_out))
        inform("wrote " + metrics_out);
    if (!trace_out.empty()) {
        TraceSession::global().stop();
        if (TraceSession::global().write_chrome_json_file(trace_out))
            inform("wrote " + trace_out);
    }
    return status;
}

/**
 * Per-layer fusion study for `profile --fuse`: a 2-layer GCN forward
 * (f = min(32, dim) -> dim ReLU -> dim identity) on @p m, each layer
 * timed as it actually ships — the unfused side allocating and
 * round-tripping its XW temporary per call (MPS_FUSE=0), the fused
 * side building its FusedLayerPlan and streaming panels
 * (mps/core/fusion.h). @p mode selects which sides run: "off" times
 * unfused only, "on" fused only, "both" both plus the speedup column.
 * Appends one JSON object per layer to @p w (inside an open array) and
 * prints one human-readable table row per layer to stderr. Traffic
 * columns are the bench/fusion n x d temporary-stream proxy.
 */
void
profile_fusion(const std::string &input_name, const CsrMatrix &m,
               index_t dim, int repeat, const std::string &mode,
               WorkStealPool &pool, JsonWriter &w)
{
    if (m.rows() != m.cols()) {
        warn("--fuse skips non-square input " + input_name +
             " (a GCN layer needs an adjacency matrix)");
        return;
    }
    const bool time_unfused = mode != "on";
    const bool time_fused = mode != "off";
    const index_t n = m.rows();
    const index_t f = std::min<index_t>(32, dim);

    Pcg32 rng(3);
    DenseMatrix x(n, f), w1(f, dim), w2(dim, dim);
    x.fill_random(rng);
    w1.fill_random(rng);
    w2.fill_random(rng);

    MergePathSchedule sched = MergePathSchedule::build(
        m, static_cast<index_t>(pool.size()) * 16);
    auto shared = borrow_schedule(sched);
    SpmmLocality loc;
    loc.tile_d = auto_tile_d(m.cols(), dim);
    loc.prefetch = auto_prefetch_distance(dim);

    // Layer-2 input, produced once outside the timed loops.
    DenseMatrix h1(n, dim);
    {
        DenseMatrix xw(n, dim);
        dense_gemm(x, w1, xw, pool);
        mergepath_spmm_parallel(m, xw, h1, sched, pool, loc);
        apply_activation(h1, Activation::kRelu);
    }

    auto avg_ms = [&](auto &&fn) {
        fn(); // warm-up
        Timer t;
        for (int i = 0; i < repeat; ++i)
            fn();
        return t.elapsed_ms() / repeat;
    };

    for (int layer = 1; layer <= 2; ++layer) {
        const DenseMatrix &in = layer == 1 ? x : h1;
        const DenseMatrix &wt = layer == 1 ? w1 : w2;
        const Activation act =
            layer == 1 ? Activation::kRelu : Activation::kNone;

        double unfused_ms = 0.0, fused_ms = 0.0;
        index_t run_tile = dim, stream_tile = dim;
        if (time_unfused) {
            unfused_ms = avg_ms([&] {
                DenseMatrix xw(n, dim), out(n, dim);
                dense_gemm(in, wt, xw, pool);
                mergepath_spmm_parallel(m, xw, out, sched, pool, loc);
                apply_activation(out, act);
            });
        }
        if (time_fused) {
            fused_ms = avg_ms([&] {
                FusedLayerPlan plan(m, dim, shared,
                                    default_fused_locality(m.cols(), dim));
                run_tile = plan.run_tile();
                stream_tile = plan.tile();
                DenseMatrix out(n, dim);
                plan.run(gemm_panel_source(in, wt, pool), out, pool,
                         activation_epilogue(act));
            });
        }

        // bench/fusion traffic proxy: one trip = n * dim * 4 bytes.
        const double trip =
            static_cast<double>(n) * dim * sizeof(value_t) / 1e9;
        const double unfused_gb =
            (5.0 + (act != Activation::kNone ? 2.0 : 0.0)) * trip;
        const double fused_gb = (run_tile >= dim ? 3.0 : 0.0) * trip +
                                2.0 * trip;

        w.begin_object();
        w.key("input").value(input_name);
        w.key("layer").value(int64_t{layer});
        w.key("dim").value(static_cast<int64_t>(dim));
        w.key("fused_tile").value(static_cast<int64_t>(stream_tile));
        w.key("fused_run_tile").value(static_cast<int64_t>(run_tile));
        if (time_unfused) {
            w.key("unfused_ms").value(unfused_ms);
            w.key("unfused_traffic_gb").value(unfused_gb);
        }
        if (time_fused) {
            w.key("fused_ms").value(fused_ms);
            w.key("fused_traffic_gb").value(fused_gb);
        }
        if (time_unfused && time_fused && fused_ms > 0.0)
            w.key("speedup").value(unfused_ms / fused_ms);
        w.end_object();

        std::string row = "  " + input_name + "  layer " +
                          std::to_string(layer) + "  d=" +
                          std::to_string(dim);
        char buf[160];
        if (time_unfused) {
            std::snprintf(buf, sizeof(buf), "  unfused %8.3f ms %6.3f GB",
                          unfused_ms, unfused_gb);
            row += buf;
        }
        if (time_fused) {
            std::snprintf(buf, sizeof(buf), "  fused %8.3f ms %6.3f GB",
                          fused_ms, fused_gb);
            row += buf;
        }
        if (time_unfused && time_fused && fused_ms > 0.0) {
            std::snprintf(buf, sizeof(buf), "  speedup %5.2fx",
                          unfused_ms / fused_ms);
            row += buf;
        }
        std::fprintf(stderr, "%s\n", row.c_str());
    }
}

/**
 * Profile a kernel x dataset sweep into one machine-readable JSON
 * report (the format the BENCH_*.json trajectory entries consume).
 */
int
cmd_profile(int argc, char **argv)
{
    FlagParser flags("profile a kernel x dataset sweep into one JSON"
                     " report");
    flags.add_string("dataset", "Cora",
                     "comma-separated Table II dataset names");
    flags.add_string("in", "",
                     "profile one matrix file instead of --dataset");
    flags.add_string("kernel", "mergepath",
                     "comma-separated registry kernel names");
    flags.add_int("dim", 16, "dense dimension size");
    flags.add_int("repeat", 5, "timed repetitions per combination");
    flags.add_string("out", "", "report path (default: stdout)");
    flags.add_string("trace-out", "",
                     "also record spans and write Chrome trace JSON");
    flags.add_string("fuse", "",
                     "per-layer fused-vs-unfused study: on | off | both");
    flags.parse(argc, argv);

    const std::string &fuse = flags.get_string("fuse");
    if (!fuse.empty() && fuse != "on" && fuse != "off" && fuse != "both")
        fatal("--fuse wants on, off or both (got '" + fuse + "')");
    const index_t dim = static_cast<index_t>(flags.get_int("dim"));
    const int repeat =
        std::max(1, static_cast<int>(flags.get_int("repeat")));
    std::vector<std::string> kernels =
        split_list(flags.get_string("kernel"));
    if (kernels.empty())
        fatal("profile needs at least one --kernel name");

    // Load every input up front so a typo fails before the sweep.
    std::vector<std::pair<std::string, CsrMatrix>> inputs;
    const std::string &in = flags.get_string("in");
    if (!in.empty()) {
        inputs.emplace_back(in, load_matrix_file(in));
    } else {
        for (const std::string &name :
             split_list(flags.get_string("dataset")))
            inputs.emplace_back(name, make_dataset(name));
    }
    if (inputs.empty())
        fatal("profile needs --dataset or --in");

    const std::string &trace_out = flags.get_string("trace-out");
    if (!trace_out.empty())
        TraceSession::global().start();

    WorkStealPool pool;
    MetricsRegistry &metrics = MetricsRegistry::global();
    Pcg32 rng(1);

    JsonWriter w;
    w.begin_object();
    w.key("tool").value("mps_tool profile");
    w.key("dim").value(static_cast<int64_t>(dim));
    w.key("repeat").value(int64_t{repeat});
    w.key("pool_threads").value(static_cast<int64_t>(pool.size()));
    w.key("results").begin_array();

    for (const auto &[input_name, m] : inputs) {
        DenseMatrix b(m.cols(), dim);
        b.fill_random(rng);
        DenseMatrix c(m.rows(), dim);
        for (const std::string &kernel_name : kernels) {
            metrics.reset();
            metrics.set_enabled(true);
            auto kernel = make_spmm_kernel(kernel_name);

            Timer prep;
            kernel->prepare(m, dim);
            double prep_ms = prep.elapsed_ms();

            kernel->run(m, b, c, pool); // warm-up
            Timer timer;
            for (int i = 0; i < repeat; ++i)
                kernel->run(m, b, c, pool);
            double run_ms = timer.elapsed_ms() / repeat;
            metrics.set_enabled(false);

            // Counters accumulated over warm-up + repeats; normalize to
            // one run via the decorator's run counter.
            int64_t runs = metrics.counter_value("kernel." + kernel_name +
                                                 ".runs");
            if (runs <= 0)
                runs = repeat + 1;
            auto per_run = [runs](int64_t total) {
                return static_cast<double>(total) /
                       static_cast<double>(runs);
            };

            w.begin_object();
            w.key("input").value(input_name);
            w.key("kernel").value(kernel_name);
            w.key("rows").value(static_cast<int64_t>(m.rows()));
            w.key("cols").value(static_cast<int64_t>(m.cols()));
            w.key("nnz").value(static_cast<int64_t>(m.nnz()));
            w.key("prepare_ms").value(prep_ms);
            w.key("run_ms").value(run_ms);
            w.key("gflops").value(run_ms <= 0.0
                                      ? 0.0
                                      : 2.0 * m.nnz() * dim /
                                            (run_ms * 1e6));
            w.key("schedule_build_ms")
                .value(metrics.timer_value("schedule.build_ms").sum);
            w.key("atomic_commits")
                .value(per_run(metrics.counter_value(
                    "spmm." + kernel_name + ".atomic_commits")));
            w.key("plain_commits")
                .value(per_run(metrics.counter_value(
                    "spmm." + kernel_name + ".plain_commits")));
            w.key("split_rows")
                .value(metrics.gauge_value("spmm." + kernel_name +
                                           ".split_rows"));
            w.key("load_imbalance")
                .value(metrics.gauge_value("spmm." + kernel_name +
                                           ".load_imbalance"));
            w.key("metrics");
            metrics.append_json_array(w);
            w.end_object();
        }
    }
    w.end_array();

    if (!fuse.empty()) {
        std::fprintf(stderr,
                     "fusion study (dim=%lld, repeat=%d, mode=%s):\n",
                     static_cast<long long>(dim), repeat, fuse.c_str());
        w.key("fusion").begin_array();
        for (const auto &[input_name, m] : inputs)
            profile_fusion(input_name, m, dim, repeat, fuse, pool, w);
        w.end_array();
    }
    w.end_object();

    const std::string &out = flags.get_string("out");
    if (out.empty()) {
        std::printf("%s\n", w.str().c_str());
    } else {
        std::ofstream f(out);
        if (!f)
            fatal("cannot open for writing: " + out);
        f << w.str() << '\n';
        inform("wrote " + out);
    }
    if (!trace_out.empty()) {
        TraceSession::global().stop();
        if (TraceSession::global().write_chrome_json_file(trace_out))
            inform("wrote " + trace_out);
    }
    return 0;
}

int
cmd_reorder(int argc, char **argv)
{
    FlagParser flags("relabel a graph (degree sort or BFS)");
    add_io_flags(flags);
    flags.add_string("method", "bfs", "bfs | degree | degree-asc");
    flags.add_string("out", "reordered.bin", "output file (.bin or .mtx)");
    flags.parse(argc, argv);
    CsrMatrix m = load_matrix(flags);
    const std::string &method = flags.get_string("method");
    std::vector<index_t> perm;
    if (method == "bfs") {
        perm = bfs_permutation(m);
    } else if (method == "degree") {
        perm = degree_sort_permutation(m, true);
    } else if (method == "degree-asc") {
        perm = degree_sort_permutation(m, false);
    } else {
        fatal("unknown method '" + method + "' (bfs|degree|degree-asc)");
    }
    store_matrix(permute_symmetric(m, perm), flags.get_string("out"));
    return 0;
}

/**
 * Closed-loop serving load generator: sweep client count x batch limit
 * over one graph/model and report throughput + latency percentiles as
 * JSON. All sweep points share one ScheduleCache, so each
 * (graph, threads, cost) schedule is built exactly once per run.
 */
int
cmd_serve_bench(int argc, char **argv)
{
    FlagParser flags("serving load sweep (clients x max-batch) into one"
                     " JSON report");
    add_io_flags(flags);
    flags.add_int("nodes", 4096,
                  "synthetic power-law nodes (used without --in/--dataset)");
    flags.add_int("avg-degree", 128, "synthetic average degree");
    flags.add_int("max-degree", 512, "synthetic maximum row degree");
    // Default dims put the unbatched SpMM in the traversal-bound regime
    // batching exists for (see DESIGN.md on widening the effective d).
    flags.add_int("feat", 8, "input feature dimension");
    flags.add_int("hidden", 4, "hidden layer width");
    flags.add_int("out-dim", 4, "output layer width");
    flags.add_string("clients", "1,2,4,8", "comma-separated client counts");
    flags.add_string("max-batch", "1,8",
                     "comma-separated batch-size limits");
    flags.add_int("max-delay-us", 2000, "batch window in microseconds");
    flags.add_int("requests", 32, "requests per client per sweep point");
    flags.add_int("workers", 2, "server worker threads");
    flags.add_int("pool-threads", 0, "pool threads per worker (0 = auto)");
    flags.add_string("out", "", "report path (default: stdout)");
    flags.add_int("telemetry-port", -1,
                  "expose /metrics during the sweep (0 = ephemeral port,"
                  " -1 = off)");
    flags.add_string("telemetry-port-file", "",
                     "write the bound telemetry port to this file");
    flags.add_int("telemetry-linger-ms", 0,
                  "after the sweep, keep /metrics up until a scrape"
                  " lands (at most this long)");
    flags.parse(argc, argv);

    CsrMatrix m;
    std::string input_name;
    if (!flags.get_string("in").empty() ||
        !flags.get_string("dataset").empty()) {
        m = load_matrix(flags);
        input_name = flags.get_string("in").empty()
                         ? flags.get_string("dataset")
                         : flags.get_string("in");
    } else {
        PowerLawParams p;
        p.nodes = static_cast<index_t>(flags.get_int("nodes"));
        p.target_nnz = p.nodes *
                       static_cast<index_t>(flags.get_int("avg-degree"));
        p.max_degree = static_cast<index_t>(flags.get_int("max-degree"));
        p.seed = 7;
        p.value_mode = ValueMode::kGcnNormalized;
        m = power_law_graph(p);
        input_name = "power-law";
    }

    const index_t feat = static_cast<index_t>(flags.get_int("feat"));
    const index_t hidden = static_cast<index_t>(flags.get_int("hidden"));
    const index_t out_dim = static_cast<index_t>(flags.get_int("out-dim"));
    std::vector<GcnLayer> layers;
    layers.emplace_back(random_layer_weights(feat, hidden, 11),
                        Activation::kRelu);
    layers.emplace_back(random_layer_weights(hidden, out_dim, 13),
                        Activation::kNone);

    std::vector<int> client_counts;
    for (const std::string &s : split_list(flags.get_string("clients")))
        client_counts.push_back(std::stoi(s));
    std::vector<int> batch_limits;
    for (const std::string &s : split_list(flags.get_string("max-batch")))
        batch_limits.push_back(std::stoi(s));
    if (client_counts.empty() || batch_limits.empty())
        fatal("serve-bench needs non-empty --clients and --max-batch");
    const int requests = static_cast<int>(flags.get_int("requests"));
    const int64_t delay_us = flags.get_int("max-delay-us");

    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.reset();
    metrics.set_enabled(true);

    // One endpoint for the whole sweep (per-point servers would fight
    // over the port); the scrape hook follows the live sweep point.
    std::mutex live_mutex;
    serve::Server *live_server = nullptr;
    std::unique_ptr<serve::TelemetryServer> telemetry;
    if (flags.get_int("telemetry-port") >= 0) {
        serve::TelemetryServer::Options opts;
        opts.port = static_cast<int>(flags.get_int("telemetry-port"));
        opts.pre_scrape = [&live_mutex, &live_server] {
            std::lock_guard<std::mutex> lk(live_mutex);
            if (live_server != nullptr)
                live_server->publish_telemetry();
        };
        telemetry = std::make_unique<serve::TelemetryServer>(
            std::move(opts));
        if (telemetry->start()) {
            inform("telemetry: /metrics on 127.0.0.1:" +
                   std::to_string(telemetry->port()));
            const std::string &port_file =
                flags.get_string("telemetry-port-file");
            if (!port_file.empty()) {
                std::ofstream f(port_file);
                f << telemetry->port() << '\n';
            }
        } else {
            telemetry.reset();
        }
    }

    DenseMatrix feature_template(m.rows(), feat);
    Pcg32 rng(3);
    feature_template.fill_random(rng);

    // One cache across the whole sweep: every sweep point reuses the
    // schedules the first one built.
    ScheduleCache sweep_cache;

    JsonWriter w;
    w.begin_object();
    w.key("tool").value("mps_tool serve-bench");
    w.key("input").value(input_name);
    w.key("rows").value(static_cast<int64_t>(m.rows()));
    w.key("nnz").value(static_cast<int64_t>(m.nnz()));
    w.key("feat").value(static_cast<int64_t>(feat));
    w.key("hidden").value(static_cast<int64_t>(hidden));
    w.key("out_dim").value(static_cast<int64_t>(out_dim));
    w.key("requests_per_client").value(int64_t{requests});
    w.key("max_delay_us").value(delay_us);
    w.key("workers").value(flags.get_int("workers"));
    w.key("results").begin_array();

    for (int max_batch : batch_limits) {
        for (int clients : client_counts) {
            serve::ServeConfig cfg;
            cfg.queue_capacity = 4096;
            cfg.num_workers =
                static_cast<unsigned>(flags.get_int("workers"));
            cfg.pool_threads =
                static_cast<unsigned>(flags.get_int("pool-threads"));
            cfg.batch.max_batch = max_batch;
            cfg.batch.max_delay_us = delay_us;
            cfg.overflow = serve::OverflowPolicy::kBlock;
            // The bench owns the endpoint; keep per-point servers from
            // racing it for MPS_TELEMETRY_PORT.
            cfg.telemetry_port = -1;
            serve::Server server(cfg, &sweep_cache);
            const uint64_t gid = server.register_graph(m, layers);
            {
                std::lock_guard<std::mutex> lk(live_mutex);
                live_server = &server;
            }

            // Warm up outside the timed window (first point also pays
            // the schedule builds here, once for the whole sweep).
            server.infer(gid, feature_template);

            std::atomic<int64_t> ok{0};
            Timer wall;
            std::vector<std::thread> pumps;
            pumps.reserve(static_cast<size_t>(clients));
            for (int cl = 0; cl < clients; ++cl) {
                pumps.emplace_back([&server, &feature_template, &ok,
                                    requests, gid] {
                    for (int i = 0; i < requests; ++i) {
                        DenseMatrix x = feature_template;
                        serve::InferenceResult r =
                            server.infer(gid, std::move(x));
                        if (r.ok())
                            ok.fetch_add(1, std::memory_order_relaxed);
                    }
                });
            }
            for (std::thread &t : pumps)
                t.join();
            const double wall_ms = wall.elapsed_ms();
            {
                std::lock_guard<std::mutex> lk(live_mutex);
                live_server = nullptr;
            }
            server.shutdown();
            serve::ServerStats st = server.stats();

            w.begin_object();
            w.key("clients").value(int64_t{clients});
            w.key("max_batch").value(int64_t{max_batch});
            w.key("completed_ok").value(ok.load());
            w.key("wall_ms").value(wall_ms);
            w.key("throughput_rps")
                .value(wall_ms <= 0.0
                           ? 0.0
                           : static_cast<double>(ok.load()) * 1e3 /
                                 wall_ms);
            w.key("batches").value(st.batches);
            w.key("mean_batch_size").value(st.mean_batch_size);
            w.key("max_batch_size").value(st.max_batch_size);
            w.key("rejected").value(st.rejected);
            w.key("timed_out").value(st.timed_out);
            w.key("latency_ms").begin_object();
            w.key("mean").value(st.latency_ms.mean);
            w.key("p50").value(st.latency_ms.p50);
            w.key("p95").value(st.latency_ms.p95);
            w.key("p99").value(st.latency_ms.p99);
            w.key("max").value(st.latency_ms.max);
            w.end_object();
            w.end_object();
        }
    }
    w.end_array();

    if (telemetry != nullptr) {
        // Give a late scraper (tools/check.sh) a chance to observe the
        // sweep's final state before the registry freezes.
        const double linger_ms =
            static_cast<double>(flags.get_int("telemetry-linger-ms"));
        Timer linger;
        while (telemetry->scrape_count() == 0 &&
               linger.elapsed_ms() < linger_ms)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        telemetry->stop();
    }

    metrics.set_enabled(false);
    w.key("schedule_cache").begin_object();
    w.key("entries").value(static_cast<int64_t>(sweep_cache.size()));
    w.key("hits").value(sweep_cache.hits());
    w.key("misses").value(sweep_cache.misses());
    w.key("builds").value(metrics.counter_value("schedule.builds"));
    w.end_object();
    w.key("metrics");
    metrics.append_json_array(w);
    w.end_object();

    const std::string &out = flags.get_string("out");
    if (out.empty()) {
        std::printf("%s\n", w.str().c_str());
    } else {
        std::ofstream f(out);
        if (!f)
            fatal("cannot open for writing: " + out);
        f << w.str() << '\n';
        inform("wrote " + out);
    }
    return 0;
}

/** Hot-tail edge batch for one dynamic-graph update. */
GraphDelta
churn_bench_delta(Pcg32 &rng, index_t rows, index_t cols,
                  index_t hot_begin, int edges)
{
    GraphDelta delta;
    delta.upserts.reserve(static_cast<size_t>(edges));
    const auto hot_span = static_cast<uint32_t>(rows - hot_begin);
    for (int i = 0; i < edges; ++i) {
        EdgeUpdate e;
        e.row =
            hot_begin + static_cast<index_t>(rng.next_below(hot_span));
        e.col = static_cast<index_t>(
            rng.next_below(static_cast<uint32_t>(cols)));
        e.value = rng.next_float(0.01f, 1.0f);
        delta.upserts.push_back(e);
    }
    return delta;
}

/**
 * Dynamic-graph churn sweep: replay an edge-update stream and compare
 * the schedule maintenance each policy pays per update — incremental
 * (overlay + lazy compaction + repair_schedule) against
 * rebuild-every-update (fresh build + census per update) — then run a
 * short serving comparison with a live update_graph() stream. Emits
 * one JSON report.
 */
int
cmd_churn_bench(int argc, char **argv)
{
    FlagParser flags("dynamic-graph churn sweep into one JSON report");
    add_io_flags(flags);
    flags.add_int("nodes", 20000,
                  "synthetic power-law nodes (used without --in/--dataset)");
    flags.add_int("avg-degree", 8, "synthetic average degree");
    flags.add_int("max-degree", 256, "synthetic maximum row degree");
    flags.add_int("threads", 64, "merge-path threads per schedule");
    flags.add_int("updates", 80, "update batches per sweep point");
    flags.add_string("update-edges", "0",
                     "comma-separated edges per update batch"
                     " (0 = 0.1%% of nnz)");
    flags.add_double("compact-ratio", 0.02,
                     "delta fraction that triggers lazy compaction"
                     " (0 = library default)");
    flags.add_double("hot-fraction", 0.05,
                     "fraction of tail rows receiving churn");
    flags.add_int("serve-clients", 2,
                  "closed-loop clients for the serve phase"
                  " (0 = skip the serve phase)");
    flags.add_int("serve-requests", 12, "requests per client");
    flags.add_int("update-hz", 20,
                  "update_graph batches per second in the serve phase");
    flags.add_int("feat", 8, "input feature dimension");
    flags.add_int("hidden", 4, "hidden layer width");
    flags.add_int("workers", 2, "server worker threads");
    flags.add_string("out", "", "report path (default: stdout)");
    flags.parse(argc, argv);

    CsrMatrix m;
    std::string input_name;
    if (!flags.get_string("in").empty() ||
        !flags.get_string("dataset").empty()) {
        m = load_matrix(flags);
        input_name = flags.get_string("in").empty()
                         ? flags.get_string("dataset")
                         : flags.get_string("in");
    } else {
        PowerLawParams p;
        p.nodes = static_cast<index_t>(flags.get_int("nodes"));
        p.target_nnz = p.nodes *
                       static_cast<index_t>(flags.get_int("avg-degree"));
        p.max_degree = static_cast<index_t>(flags.get_int("max-degree"));
        p.seed = 7;
        p.value_mode = ValueMode::kGcnNormalized;
        m = power_law_graph(p);
        input_name = "power-law";
    }

    const double hot_fraction =
        std::clamp(flags.get_double("hot-fraction"), 1e-4, 1.0);
    const index_t hot_begin = static_cast<index_t>(
        static_cast<double>(m.rows()) * (1.0 - hot_fraction));
    const index_t threads =
        static_cast<index_t>(flags.get_int("threads"));
    const int updates = static_cast<int>(flags.get_int("updates"));
    const double compact_ratio = flags.get_double("compact-ratio");

    std::vector<int> edge_points;
    for (const std::string &s :
         split_list(flags.get_string("update-edges"))) {
        int v = std::stoi(s);
        if (v <= 0)
            v = std::max(1, m.nnz() / 1000);
        edge_points.push_back(v);
    }
    if (edge_points.empty())
        fatal("churn-bench needs a non-empty --update-edges list");

    JsonWriter w;
    w.begin_object();
    w.key("tool").value("mps_tool churn-bench");
    w.key("input").value(input_name);
    w.key("rows").value(static_cast<int64_t>(m.rows()));
    w.key("nnz").value(static_cast<int64_t>(m.nnz()));
    w.key("threads").value(static_cast<int64_t>(threads));
    w.key("updates_per_point").value(int64_t{updates});
    w.key("compact_ratio").value(compact_ratio);
    w.key("hot_fraction").value(hot_fraction);
    w.key("repair_sweep").begin_array();

    for (int update_edges : edge_points) {
        Pcg32 rng(99);
        DeltaCsr dynamic(m);
        if (compact_ratio > 0.0)
            dynamic.set_compact_ratio(compact_ratio);
        DeltaCsr eager(m);
        MergePathSchedule sched = MergePathSchedule::build(m, threads);
        int compactions = 0;
        int fallbacks = 0;
        double repair_total_us = 0.0;
        double rebuild_total_us = 0.0;
        for (int u = 0; u < updates; ++u) {
            GraphDelta delta = churn_bench_delta(
                rng, m.rows(), m.cols(), hot_begin, update_edges);
            dynamic.apply(delta);
            if (dynamic.needs_compaction()) {
                DeltaCsr::CompactResult cr = dynamic.compact();
                Timer repair_timer;
                ScheduleRepair rep =
                    repair_schedule(sched, *cr.old_base, *cr.new_base,
                                    cr.first_dirty_row);
                rep.schedule.census_part(*cr.new_base, rep.dirty_begin,
                                        rep.dirty_end);
                repair_total_us += repair_timer.elapsed_us();
                ++compactions;
                if (rep.rebuilt)
                    ++fallbacks;
                sched = std::move(rep.schedule);
            }
            eager.apply(delta);
            DeltaCsr::CompactResult cr = eager.compact();
            Timer rebuild_timer;
            MergePathSchedule fresh =
                MergePathSchedule::build(*cr.new_base, threads);
            fresh.census(*cr.new_base);
            rebuild_total_us += rebuild_timer.elapsed_us();
        }
        const double per_update_repair =
            repair_total_us / std::max(1, updates);
        const double per_update_rebuild =
            rebuild_total_us / std::max(1, updates);
        w.begin_object();
        w.key("update_edges").value(int64_t{update_edges});
        w.key("compactions").value(int64_t{compactions});
        w.key("fallbacks").value(int64_t{fallbacks});
        w.key("repair_us_per_compaction")
            .value(repair_total_us / std::max(1, compactions));
        w.key("repair_us_per_update").value(per_update_repair);
        w.key("rebuild_us_per_update").value(per_update_rebuild);
        w.key("per_update_speedup")
            .value(per_update_rebuild /
                   std::max(1e-9, per_update_repair));
        w.end_object();
    }
    w.end_array();

    const int serve_clients =
        static_cast<int>(flags.get_int("serve-clients"));
    if (serve_clients > 0) {
        const index_t feat =
            static_cast<index_t>(flags.get_int("feat"));
        const index_t hidden =
            static_cast<index_t>(flags.get_int("hidden"));
        std::vector<GcnLayer> layers;
        layers.emplace_back(random_layer_weights(feat, hidden, 11),
                            Activation::kRelu);
        layers.emplace_back(random_layer_weights(hidden, hidden, 13),
                            Activation::kNone);
        DenseMatrix features(m.rows(), feat);
        Pcg32 frng(3);
        features.fill_random(frng);
        const int requests =
            static_cast<int>(flags.get_int("serve-requests"));
        const int update_hz =
            static_cast<int>(flags.get_int("update-hz"));
        const int batch_edges = edge_points.front();

        const auto run_point = [&](serve::GraphUpdatePolicy policy,
                                   bool churn) {
            serve::ServeConfig cfg;
            cfg.queue_capacity = 4096;
            cfg.num_workers =
                static_cast<unsigned>(flags.get_int("workers"));
            cfg.batch.max_batch = 8;
            cfg.batch.max_delay_us = 2000;
            cfg.overflow = serve::OverflowPolicy::kBlock;
            cfg.update_policy = policy;
            cfg.telemetry_port = -1;
            serve::Server server(cfg);
            const uint64_t gid = server.register_graph(m, layers);
            server.infer(gid, features);

            std::atomic<bool> stop{false};
            std::thread updater;
            if (churn) {
                const auto interval = std::chrono::microseconds(
                    1000000 / std::max(1, update_hz));
                updater = std::thread([&server, &stop, &m, gid,
                                       batch_edges, interval,
                                       hot_begin] {
                    Pcg32 urng(1234);
                    while (!stop.load(std::memory_order_acquire)) {
                        server.update_graph(
                            gid, churn_bench_delta(urng, m.rows(),
                                                   m.cols(), hot_begin,
                                                   batch_edges));
                        std::this_thread::sleep_for(interval);
                    }
                });
            }
            std::atomic<int64_t> ok{0};
            Timer wall;
            std::vector<std::thread> pumps;
            pumps.reserve(static_cast<size_t>(serve_clients));
            for (int c = 0; c < serve_clients; ++c) {
                pumps.emplace_back(
                    [&server, &features, &ok, requests, gid] {
                        for (int i = 0; i < requests; ++i) {
                            DenseMatrix x = features;
                            if (server.infer(gid, std::move(x)).ok())
                                ok.fetch_add(
                                    1, std::memory_order_relaxed);
                        }
                    });
            }
            for (std::thread &t : pumps)
                t.join();
            const double wall_ms = wall.elapsed_ms();
            stop.store(true, std::memory_order_release);
            if (updater.joinable())
                updater.join();
            server.shutdown();
            serve::ServerStats st = server.stats();

            w.begin_object();
            w.key("completed_ok").value(ok.load());
            w.key("throughput_rps")
                .value(wall_ms <= 0.0
                           ? 0.0
                           : static_cast<double>(ok.load()) * 1e3 /
                                 wall_ms);
            w.key("p50_ms").value(st.latency_ms.p50);
            w.key("p99_ms").value(st.latency_ms.p99);
            w.key("graph_updates").value(st.graph_updates);
            w.key("graph_compactions").value(st.graph_compactions);
            w.end_object();
        };

        w.key("serve").begin_object();
        w.key("clients").value(int64_t{serve_clients});
        w.key("requests_per_client").value(int64_t{requests});
        w.key("update_hz").value(int64_t{update_hz});
        w.key("update_edges").value(int64_t{batch_edges});
        w.key("no_churn");
        run_point(serve::GraphUpdatePolicy::kIncremental, false);
        w.key("incremental");
        run_point(serve::GraphUpdatePolicy::kIncremental, true);
        w.key("rebuild_every_update");
        run_point(serve::GraphUpdatePolicy::kRebuildEveryUpdate, true);
        w.end_object();
    }
    w.end_object();

    const std::string &out = flags.get_string("out");
    if (out.empty()) {
        std::printf("%s\n", w.str().c_str());
    } else {
        std::ofstream f(out);
        if (!f)
            fatal("cannot open for writing: " + out);
        f << w.str() << '\n';
        inform("wrote " + out);
    }
    return 0;
}

/**
 * Split --url into (host, port, path); accepts `host:port[/path]` with
 * an optional `http://` scheme. The path defaults to /metrics.
 */
bool
parse_scrape_url(std::string url, std::string *host, int *port,
                 std::string *path)
{
    const std::string scheme = "http://";
    if (url.rfind(scheme, 0) == 0)
        url = url.substr(scheme.size());
    const size_t slash = url.find('/');
    *path = slash == std::string::npos ? "/metrics" : url.substr(slash);
    const std::string authority =
        slash == std::string::npos ? url : url.substr(0, slash);
    const size_t colon = authority.rfind(':');
    if (colon == std::string::npos)
        return false;
    *host = authority.substr(0, colon);
    if (host->empty() || *host == "localhost")
        *host = "127.0.0.1";
    char *end = nullptr;
    const std::string port_str = authority.substr(colon + 1);
    const long parsed = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0')
        return false;
    *port = static_cast<int>(parsed);
    return *port > 0 && *port <= 65535;
}

/**
 * Polling text dashboard over an OpenMetrics source: throughput from
 * counter deltas, latency quantiles from the serve histogram, queue
 * depth, scheduler imbalance and per-worker utilization from busy-time
 * deltas. The source is a live /metrics endpoint (--url) or a file of
 * scraped text (--file).
 */
int
cmd_top(int argc, char **argv)
{
    FlagParser flags("live telemetry dashboard over an OpenMetrics"
                     " source");
    flags.add_string("url", "",
                     "scrape endpoint ([http://]host:port[/metrics])");
    flags.add_string("file", "",
                     "read OpenMetrics text from a file instead");
    flags.add_int("interval-ms", 1000, "refresh interval");
    flags.add_int("iters", 0, "refresh count (0 = until interrupted)");
    flags.add_bool("once", false,
                   "one snapshot, plain output, no screen clearing");
    flags.add_bool("strict", false,
                   "validate the document; nonzero exit on format"
                   " errors");
    flags.parse(argc, argv);

    const std::string &url = flags.get_string("url");
    const std::string &file = flags.get_string("file");
    if (url.empty() == file.empty())
        fatal("top needs exactly one of --url or --file");

    std::string host, path;
    int port = 0;
    if (!url.empty() && !parse_scrape_url(url, &host, &port, &path))
        fatal("cannot parse --url '" + url +
              "' (want [http://]host:port[/path])");

    const bool once = flags.get_bool("once");
    const bool strict = flags.get_bool("strict");
    int64_t iters = flags.get_int("iters");
    if (once)
        iters = 1;
    const int interval_ms =
        std::max<int>(1, static_cast<int>(flags.get_int("interval-ms")));

    std::map<std::string, double> prev_busy;
    double prev_completed = -1.0;
    double prev_t_ms = 0.0;
    Timer wall;

    for (int64_t i = 0; iters == 0 || i < iters; ++i) {
        std::string text, err;
        if (!url.empty()) {
            if (!serve::http_get(host, port, path, &text, &err))
                fatal("scrape failed: " + err);
        } else {
            std::ifstream f(file);
            if (!f)
                fatal("cannot open " + file);
            std::ostringstream ss;
            ss << f.rdbuf();
            text = ss.str();
        }
        if (strict && !validate_openmetrics(text, &err)) {
            std::fprintf(stderr,
                         "mps_tool top: invalid OpenMetrics: %s\n",
                         err.c_str());
            return 1;
        }
        OpenMetricsText doc = parse_openmetrics(text);

        const double t_ms = wall.elapsed_ms();
        const double dt_s = (t_ms - prev_t_ms) / 1e3;
        const double completed =
            doc.value_or("serve_requests_completed_total");
        const double rate = prev_completed >= 0.0 && dt_s > 0.0
                                ? (completed - prev_completed) / dt_s
                                : 0.0;

        if (!once)
            std::printf("\x1b[2J\x1b[H"); // clear + home
        std::printf("mps top — %s\n",
                    !url.empty() ? url.c_str() : file.c_str());
        std::printf("requests  submitted %.0f   completed %.0f   "
                    "throughput %.1f req/s\n",
                    doc.value_or("serve_requests_submitted_total"),
                    completed, rate);
        std::printf(
            "latency   count %.0f   p50 %.3f ms   p90 %.3f ms   "
            "p99 %.3f ms\n",
            doc.value_or("serve_request_latency_ms_count"),
            doc.histogram_quantile("serve_request_latency_ms", 0.50),
            doc.histogram_quantile("serve_request_latency_ms", 0.90),
            doc.histogram_quantile("serve_request_latency_ms", 0.99));
        std::printf("queue     depth %.0f   batches %.0f\n",
                    doc.value_or("serve_queue_depth"),
                    doc.value_or("serve_batches_total"));
        std::printf("pool      imbalance %.2f   steals %.0f   "
                    "parks %.0f\n",
                    doc.value_or("pool_imbalance"),
                    doc.value_or("pool_steals_total"),
                    doc.value_or("pool_parks_total"));

        std::map<std::string, double> busy;
        for (const OpenMetricsSample &s : doc.samples) {
            if (s.name != "pool_worker_busy_seconds")
                continue;
            auto it = s.labels.find("worker");
            if (it != s.labels.end())
                busy[it->second] = s.value;
        }
        if (!busy.empty()) {
            std::printf("workers  ");
            for (const auto &[worker, seconds] : busy) {
                double util = 0.0;
                auto p = prev_busy.find(worker);
                if (p != prev_busy.end() && dt_s > 0.0)
                    util = std::max(0.0, (seconds - p->second) / dt_s) *
                           100.0;
                std::printf(" %s:%5.1f%%", worker.c_str(), util);
            }
            std::printf("   (busy %% of wall since last refresh)\n");
        }

        prev_busy = std::move(busy);
        prev_completed = completed;
        prev_t_ms = t_ms;
        if (iters == 0 || i + 1 < iters)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
    }
    return 0;
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "mps_tool <command> [flags]   (each command supports --help)\n"
        "  generate     materialize a Table II dataset\n"
        "  convert      convert between .bin / .mtx / .el containers\n"
        "  info         matrix statistics and degree histogram\n"
        "  schedule     build + inspect + store a merge-path schedule\n"
        "  spmm         run a kernel from the registry and time it\n"
        "  profile      kernel x dataset sweep into one JSON report\n"
        "  reorder      relabel a graph (bfs | degree | degree-asc)\n"
        "  serve-bench  serving load sweep into one JSON report\n"
        "  churn-bench  dynamic-graph churn sweep into one JSON report\n"
        "  top          live telemetry dashboard (scrapes /metrics)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help") {
        usage(stdout);
        return 0;
    }
    // Shift the subcommand out of the argument list.
    if (cmd == "generate")
        return cmd_generate(argc - 1, argv + 1);
    if (cmd == "convert")
        return cmd_convert(argc - 1, argv + 1);
    if (cmd == "info")
        return cmd_info(argc - 1, argv + 1);
    if (cmd == "schedule")
        return cmd_schedule(argc - 1, argv + 1);
    if (cmd == "spmm")
        return cmd_spmm(argc - 1, argv + 1);
    if (cmd == "profile")
        return cmd_profile(argc - 1, argv + 1);
    if (cmd == "reorder")
        return cmd_reorder(argc - 1, argv + 1);
    if (cmd == "serve-bench")
        return cmd_serve_bench(argc - 1, argv + 1);
    if (cmd == "churn-bench")
        return cmd_churn_bench(argc - 1, argv + 1);
    if (cmd == "top")
        return cmd_top(argc - 1, argv + 1);
    std::fprintf(stderr, "mps_tool: unknown command '%s'\n", cmd.c_str());
    usage(stderr);
    return 1;
}
