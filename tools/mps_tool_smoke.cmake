# Smoke test for the mps_tool CLI contract, run as
#   cmake -DMPS_TOOL=<binary> -P mps_tool_smoke.cmake
#
# Checks:
#  - no arguments        -> non-zero exit, usage on stderr
#  - unknown subcommand  -> non-zero exit, usage on stderr, stdout clean
#  - unknown flag        -> non-zero exit
#  - help / --help       -> zero exit, usage on stdout
#  - a real command runs -> zero exit

if(NOT DEFINED MPS_TOOL)
    message(FATAL_ERROR "pass -DMPS_TOOL=<path to mps_tool>")
endif()

function(expect_failure_with_usage label pattern)
    execute_process(COMMAND ${MPS_TOOL} ${ARGN}
        RESULT_VARIABLE code
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(code EQUAL 0)
        message(FATAL_ERROR "${label}: expected non-zero exit, got 0")
    endif()
    if(NOT err MATCHES "${pattern}")
        message(FATAL_ERROR "${label}: expected '${pattern}' on stderr,"
            " got: ${err}")
    endif()
    if(out MATCHES "mps_tool <command>")
        message(FATAL_ERROR "${label}: usage leaked to stdout: ${out}")
    endif()
endfunction()

expect_failure_with_usage("no arguments" "mps_tool <command>")
expect_failure_with_usage("unknown subcommand" "mps_tool <command>"
    no-such-command)
expect_failure_with_usage("unknown flag" "usage:" info --no-such-flag=1)

execute_process(COMMAND ${MPS_TOOL} --help
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT code EQUAL 0)
    message(FATAL_ERROR "--help: expected exit 0, got ${code}")
endif()
if(NOT out MATCHES "mps_tool <command>")
    message(FATAL_ERROR "--help: expected usage on stdout, got: ${out}")
endif()

execute_process(COMMAND ${MPS_TOOL} info --dataset=Cora
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT code EQUAL 0)
    message(FATAL_ERROR "info --dataset=Cora: expected exit 0, got ${code}"
        " (stderr: ${err})")
endif()
if(NOT out MATCHES "non-zeros")
    message(FATAL_ERROR "info --dataset=Cora: unexpected output: ${out}")
endif()

message(STATUS "mps_tool smoke: all checks passed")
