#!/bin/sh
# Build and test the project four times: a plain Release configuration,
# an ASan+UBSan one (-DMPS_SANITIZE=address) that runs the full suite
# (including the work-steal pool tests), a TSan one
# (-DMPS_SANITIZE=thread) that runs the concurrency-heavy tests
# (lock-free MPSC queue, server lifecycle, work-steal pool submission/
# stealing/parking, mergepath atomic commits) under the race detector,
# and a forced-scalar one (-DMPS_FORCE_SCALAR=ON) that proves
# the kernel tests pass on the scalar microkernel reference path alone.
# A no-tile stage reruns the release SpMM/locality tests with the
# cache-locality layer disabled (MPS_TILE_D=inf MPS_PREFETCH=0),
# proving column tiling and software prefetch are behavior-neutral.
# A no-fuse stage reruns the GCN/fusion-routed tests with MPS_FUSE=0,
# proving the fused panel-streaming pipeline is opt-out clean: the
# classic GEMM -> XW -> SpMM execution still passes everything.
# A churn stage reruns the dynamic-graph tests (delta-CSR overlay,
# schedule repair, concurrent update_graph vs inference) under the
# TSan build to shake out update/serve races.
# A no-hybrid stage reruns the kernel-facing tests with MPS_HYBRID=0,
# proving the per-row-class hybrid dispatch is opt-out clean: every
# matrix degenerates to the plain merge-path tail and still passes.
# A bf16 stage reruns the kernel/GCN-facing tests with
# MPS_PRECISION=bf16, driving the narrow-operand storage through every
# inference path whose assertions hold at reduced precision. The serve
# suites are deliberately excluded there: they pin fp32-exact parity
# against sequential references (abs_tol 1e-4), which bf16 storage is
# *supposed* to perturb.
# A final telemetry stage scrapes a live serve-bench run through the
# embedded /metrics endpoint and validates the OpenMetrics exposition
# with `mps_tool top --strict`.
# Run from anywhere; build trees land in build-release/, build-asan/,
# build-tsan/ and build-scalar/ next to the source tree.
#
#   tools/check.sh [extra ctest args...]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

echo "==> configure build-release"
cmake -S "$root" -B "$root/build-release" -DCMAKE_BUILD_TYPE=Release
echo "==> build build-release"
cmake --build "$root/build-release" -j "$jobs"
echo "==> ctest build-release"
(cd "$root/build-release" && ctest --output-on-failure -j "$jobs" "$@")

echo "==> configure build-asan"
cmake -S "$root" -B "$root/build-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=address
echo "==> build build-asan"
cmake --build "$root/build-asan" -j "$jobs"
echo "==> ctest build-asan"
(cd "$root/build-asan" && ctest --output-on-failure -j "$jobs" "$@")

echo "==> configure build-tsan"
cmake -S "$root" -B "$root/build-tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=thread
echo "==> build build-tsan (concurrency tests only)"
cmake --build "$root/build-tsan" -j "$jobs" --target \
    mps_serve_queue_test mps_serve_test mps_schedule_cache_test \
    mps_metrics_test mps_work_steal_pool_test mps_telemetry_test \
    mps_dynamic_graph_test mps_fusion_test mps_hybrid_test \
    mps_microkernel_test mps_property_fuzz_test fusion
echo "==> ctest build-tsan"
(cd "$root/build-tsan" && ctest --output-on-failure -j "$jobs" \
    -R 'MpscQueue|Batcher|ServerFixture|ScheduleCacheTest|Metrics|Histogram|Trace|Telemetry|WorkStealPool|Fusion|Hybrid|Quantiz|MixedPrecision|Atomic' \
    "$@")

echo "==> fusion: panel-streaming smoke under TSan"
# The fused pipeline fires its rank-update epilogue from worker
# threads at plain commits; the smoke bench drives that multi-thread
# path end to end so TSan can see any row-ownership violation.
"$root/build-tsan/bench/fusion" --smoke > /dev/null

echo "==> churn: dynamic-graph update/inference races under TSan"
(cd "$root/build-tsan" && ctest --output-on-failure -j "$jobs" \
    -R 'DynamicServe|DeltaCsr|ScheduleRepair|ScheduleCensus|ScheduleCacheDynamic' \
    "$@")

echo "==> configure build-scalar"
cmake -S "$root" -B "$root/build-scalar" \
    -DCMAKE_BUILD_TYPE=Release -DMPS_FORCE_SCALAR=ON
echo "==> build build-scalar (kernel tests only)"
cmake --build "$root/build-scalar" -j "$jobs" --target \
    mps_microkernel_test mps_spmm_test mps_kernels_test \
    mps_property_fuzz_test
echo "==> ctest build-scalar"
(cd "$root/build-scalar" && ctest --output-on-failure -j "$jobs" \
    -R 'Microkernel|Spmm|Kernel|Fuzz' "$@")

echo "==> ctest build-notile (MPS_TILE_D=inf MPS_PREFETCH=0)"
(cd "$root/build-release" && \
    MPS_TILE_D=inf MPS_PREFETCH=0 ctest --output-on-failure -j "$jobs" \
    -R 'Spmm|Locality|Tiled|Reordered|Adaptive|Gcn|Serve' "$@")

echo "==> ctest build-nohybrid (MPS_HYBRID=0)"
(cd "$root/build-release" && \
    MPS_HYBRID=0 ctest --output-on-failure -j "$jobs" \
    -R 'Hybrid|Kernel|Spmm|Adaptive|Fuzz' "$@")

echo "==> ctest build-bf16 (MPS_PRECISION=bf16)"
(cd "$root/build-release" && \
    MPS_PRECISION=bf16 ctest --output-on-failure -j "$jobs" \
    -R 'Gcn|Microkernel|Spmm|Fuzz|Hybrid|Fusion' "$@")

echo "==> ctest build-nofuse (MPS_FUSE=0)"
(cd "$root/build-release" && \
    MPS_FUSE=0 ctest --output-on-failure -j "$jobs" \
    -R 'Gcn|Fusion|Train|Sage|Gin|Gat|Serve' "$@")

echo "==> telemetry: live /metrics scrape during serve-bench"
tool="$root/build-release/tools/mps_tool"
portfile=$(mktemp)
rm -f "$portfile"
"$tool" serve-bench --nodes=2048 --avg-degree=16 --clients=4 \
    --max-batch=4 --requests=300 --telemetry-port=0 \
    --telemetry-port-file="$portfile" --telemetry-linger-ms=10000 &
bench_pid=$!
tries=0
while [ ! -s "$portfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "telemetry: serve-bench never published its port" >&2
        kill "$bench_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
port=$(cat "$portfile")
"$tool" top --url="127.0.0.1:$port" --once --strict
wait "$bench_pid"
rm -f "$portfile"

echo "==> all checks passed"
