#!/bin/sh
# Build and test the project twice: a plain Release configuration and
# an ASan+UBSan one (-DMPS_SANITIZE=ON). Run from anywhere; build trees
# land in build-release/ and build-asan/ next to the source tree.
#
#   tools/check.sh [extra ctest args...]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

echo "==> configure build-release"
cmake -S "$root" -B "$root/build-release" -DCMAKE_BUILD_TYPE=Release
echo "==> build build-release"
cmake --build "$root/build-release" -j "$jobs"
echo "==> ctest build-release"
(cd "$root/build-release" && ctest --output-on-failure -j "$jobs" "$@")

echo "==> configure build-asan"
cmake -S "$root" -B "$root/build-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=ON
echo "==> build build-asan"
cmake --build "$root/build-asan" -j "$jobs"
echo "==> ctest build-asan"
(cd "$root/build-asan" && ctest --output-on-failure -j "$jobs" "$@")

echo "==> all checks passed"
